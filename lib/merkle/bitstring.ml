(* Representation: a string of '0'/'1' characters.  Slow but transparent;
   vertex paths are at most 128 bits so this is never a bottleneck. *)

type t = string

let empty = ""
let length = String.length

let get t i =
  if i < 0 || i >= String.length t then invalid_arg "Bitstring.get";
  t.[i] = '1'

let append_bit t b = t ^ if b then "1" else "0"

let of_bools bits =
  String.concat "" (List.map (fun b -> if b then "1" else "0") bits)

let to_bools t = List.init (String.length t) (fun i -> t.[i] = '1')

let of_int_bits v ~len =
  if len < 0 || len > 32 then invalid_arg "Bitstring.of_int_bits";
  String.init len (fun i ->
      if (v lsr (31 - i)) land 1 = 1 then '1' else '0')

let of_string s =
  String.iter
    (fun c ->
      if c <> '0' && c <> '1' then
        invalid_arg "Bitstring.of_string: expected only '0'/'1'")
    s;
  s

let to_string t = t

let id_width = 128

let of_id id =
  let h = Pvr_crypto.Sha256.digest ("vertex-path:" ^ id) in
  let buf = Bytes.create id_width in
  for i = 0 to id_width - 1 do
    let byte = Char.code h.[i / 8] in
    let bit = (byte lsr (7 - (i mod 8))) land 1 in
    Bytes.set buf i (if bit = 1 then '1' else '0')
  done;
  Bytes.unsafe_to_string buf

let is_prefix a b =
  String.length a <= String.length b
  && String.sub b 0 (String.length a) = a

let prefix_free paths =
  let rec check = function
    | [] -> true
    | p :: rest ->
        List.for_all (fun q -> not (is_prefix p q) && not (is_prefix q p)) rest
        && check rest
  in
  check paths

let compare = String.compare
let equal = String.equal
let pp ppf t = Format.pp_print_string ppf t
