(** Bitstrings identifying route-flow-graph vertices (§3.6).

    The paper requires every rule and variable to be assigned a bitstring
    such that the resulting set is prefix-free ("no valid bitstring is a
    prefix of another valid bitstring"), because the Merkle hash tree hangs
    each vertex at the node addressed by its bitstring.

    Two encodings are provided:
    - {!of_id}: a fixed-width (128-bit) path derived by hashing an
      arbitrary identifier.  Same-width strings are trivially prefix-free,
      and hashing hides how many vertices exist near a disclosed one.
    - explicit bitstrings built with {!of_bools} for tests and for the
      paper's [rule(x)] / [var(v)] style encodings. *)

type t
(** An immutable sequence of bits. *)

val empty : t
val length : t -> int
val get : t -> int -> bool
val append_bit : t -> bool -> t
val of_bools : bool list -> t
val to_bools : t -> bool list

val of_int_bits : int -> len:int -> t
(** The first [len] bits of a 32-bit integer, most-significant first —
    the natural bit path of an IPv4 CIDR prefix (addr, len), under which
    prefix containment is exactly {!is_prefix}.
    @raise Invalid_argument unless [0 <= len <= 32]. *)

val of_string : string -> t
(** Parse a string of ['0']/['1'] characters. @raise Invalid_argument. *)

val to_string : t -> string
(** ['0']/['1'] rendering. *)

val of_id : string -> t
(** The canonical 128-bit vertex path: the first 16 bytes of
    SHA-256("vertex-path:" ^ id), most-significant bit first. *)

val id_width : int
(** Bit width of {!of_id} results (128). *)

val is_prefix : t -> t -> bool
(** [is_prefix a b]: is [a] a (non-strict) prefix of [b]? *)

val prefix_free : t list -> bool
(** Is the set prefix-free (no element a strict or equal prefix of a
    different element; duplicates violate it)? *)

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
