(* pvr: command-line driver for the PVR library.

     pvr round --behaviour false-bits -k 8     run one Figure-1 round
     pvr check <config-file>                   parse + static-check a policy
     pvr topology --tiers 2,4,8                BGP convergence statistics
     pvr primitives                            crypto primitive timings *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg
module C = Pvr_crypto
module Obs = Pvr_obs

let asn = G.Asn.of_int

(* Shared --stats behaviour: enable the pvr_obs registry for the command
   and print the JSON snapshot (op counts, byte counts, span histograms)
   when it finishes. *)
let with_stats stats f =
  if not stats then f ()
  else begin
    Obs.set_enabled true;
    Obs.reset_all ();
    Fun.protect
      ~finally:(fun () ->
        print_endline
          (Obs.Json.to_string (Obs.Snapshot.to_json (Obs.Snapshot.capture ()))))
      f
  end

(* ---- round ---------------------------------------------------------------- *)

let behaviour_conv =
  let parse s =
    match
      List.find_opt (fun b -> P.Adversary.to_string b = s) P.Adversary.all
    with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            ("unknown behaviour; one of: "
            ^ String.concat ", " (List.map P.Adversary.to_string P.Adversary.all)))
  in
  let print ppf b = Format.pp_print_string ppf (P.Adversary.to_string b) in
  Cmdliner.Arg.conv (parse, print)

let run_round behaviour k bits seed dump_evidence stats =
  let failed = ref false in
  with_stats stats (fun () ->
  let rng = C.Drbg.of_int_seed seed in
  let a = asn 1 and b = asn 100 in
  let providers = List.init k (fun i -> asn (10 + i)) in
  Printf.printf "Generating %d RSA-%d keys...\n%!" (k + 2) bits;
  let keyring = P.Keyring.create ~bits rng (a :: b :: providers) in
  let prefix = G.Prefix.of_string "203.0.113.0/24" in
  let routes =
    List.mapi
      (fun i n ->
        let len = 1 + (i mod 8) in
        let path =
          List.init len (fun j -> if j = 0 then n else asn (8000 + j))
        in
        let base = G.Route.originate ~asn:n prefix in
        (n, { base with G.Route.as_path = path; next_hop = n }))
      providers
  in
  let r =
    P.Runner.min_round behaviour rng keyring ~prover:a ~beneficiary:b ~epoch:1
      ~prefix ~routes
  in
  Printf.printf "behaviour=%s detected=%b convicted=%b messages=%d\n"
    (P.Adversary.to_string behaviour)
    r.P.Runner.detected r.P.Runner.convicted r.P.Runner.messages;
  List.iter
    (fun (_, e, v) ->
      Printf.printf "  [%s] %s\n" (P.Judge.verdict_to_string v)
        (P.Evidence.describe e);
      if dump_evidence then
        Printf.printf "    transportable evidence (hex): %s...\n"
          (String.sub (P.Evidence_codec.to_hex e) 0
             (min 96 (String.length (P.Evidence_codec.to_hex e)))))
    r.P.Runner.judged;
  if behaviour = P.Adversary.Honest && r.P.Runner.detected then failed := true);
  if !failed then exit 1

(* ---- soak ------------------------------------------------------------------- *)

(* Adversarial soak under an unreliable network: every behaviour, [rounds]
   times, over fault-injected links.  Asserts the §2.3 properties the whole
   way: Honest is never convicted (Accuracy), and any Byzantine behaviour
   whose witnessing messages were delivered is detected and convicted
   (Detection/Evidence).  All randomness derives from --seed, so the output
   is byte-identical across runs with the same arguments. *)
let run_soak seed rounds k bits drop duplicate delay reorder budget stats =
  let failed = ref false in
  with_stats stats (fun () ->
      let master = C.Drbg.of_int_seed seed in
      let a = asn 1 and b = asn 100 in
      let providers = List.init k (fun i -> asn (10 + i)) in
      Printf.printf
        "soak: seed=%d rounds=%d k=%d drop=%.2f duplicate=%.2f delay=%d \
         reorder=%b budget=%d\n%!"
        seed rounds k drop duplicate delay reorder budget;
      let keyring =
        P.Keyring.create ~bits (C.Drbg.split master "keys") (a :: b :: providers)
      in
      let policy =
        Pvr_net.faulty ~drop ~duplicate ~delay_max:delay ~reorder ()
      in
      let faults =
        {
          P.Runner.perfect_faults with
          fp_policy = policy;
          fp_retry_budget = budget;
        }
      in
      let max_path_len = 8 in
      let prefix = G.Prefix.of_string "203.0.113.0/24" in
      let violations = ref 0 in
      let required = ref 0 in
      let retries = ref 0 and timeouts = ref 0 and drops = ref 0 in
      for i = 1 to rounds do
        let round_rng = C.Drbg.split master (Printf.sprintf "round-%d" i) in
        let routes =
          List.map
            (fun n ->
              let len = 1 + C.Drbg.uniform_int round_rng max_path_len in
              let path =
                List.init len (fun j ->
                    if j = 0 then n else asn (8000 + (100 * i) + j))
              in
              let base = G.Route.originate ~asn:n prefix in
              (n, { base with G.Route.as_path = path; next_hop = n }))
            providers
        in
        List.iter
          (fun beh ->
            let rng =
              C.Drbg.split master
                (Printf.sprintf "round-%d.%s" i (P.Adversary.to_string beh))
            in
            let nr =
              P.Runner.min_round_faulty ~max_path_len ~faults beh rng keyring
                ~prover:a ~beneficiary:b ~epoch:i ~prefix ~routes
            in
            let r = nr.P.Runner.base in
            let must =
              beh <> P.Adversary.Honest
              && P.Runner.detection_expected beh ~beneficiary:b ~routes nr
            in
            if must then incr required;
            retries := !retries + nr.P.Runner.net_retries;
            timeouts := !timeouts + nr.P.Runner.net_timeouts;
            drops := !drops + nr.P.Runner.net_drops + nr.P.Runner.gossip_drops;
            let bad_accuracy =
              beh = P.Adversary.Honest && r.P.Runner.convicted
            in
            let bad_detection =
              must && not (r.P.Runner.detected && r.P.Runner.convicted)
            in
            if bad_accuracy || bad_detection then begin
              incr violations;
              Printf.printf "VIOLATION round=%d behaviour=%s accuracy=%b \
                             detection=%b\n"
                i (P.Adversary.to_string beh) bad_accuracy bad_detection
            end;
            Printf.printf
              "round=%-3d behaviour=%-18s detected=%-5b convicted=%-5b \
               required=%-5b retries=%d timeouts=%d drops=%d\n"
              i (P.Adversary.to_string beh) r.P.Runner.detected
              r.P.Runner.convicted must nr.P.Runner.net_retries
              nr.P.Runner.net_timeouts
              (nr.P.Runner.net_drops + nr.P.Runner.gossip_drops))
          P.Adversary.all
      done;
      Printf.printf
        "soak summary: runs=%d required_detections=%d retries=%d timeouts=%d \
         drops=%d violations=%d\n"
        (rounds * List.length P.Adversary.all)
        !required !retries !timeouts !drops !violations;
      if !violations > 0 then failed := true);
  if !failed then exit 1

(* ---- engine ----------------------------------------------------------------- *)

(* Continuous topology-wide verification: a hierarchy topology under churn,
   every promising AS re-verified each epoch by the incremental engine.
   Same determinism contract as soak — everything derives from --seed — plus
   the engine's own: the digest is identical for any --jobs value and for
   the cache on or off. *)
let run_engine seed tiers peering epochs jobs bits cache salt_every turnover
    origins prefixes_per_origin anycast drop stats =
  let failed = ref false in
  with_stats stats (fun () ->
      let master = C.Drbg.of_int_seed seed in
      let tiers = List.map int_of_string (String.split_on_char ',' tiers) in
      let topo =
        G.Topology.hierarchy
          (C.Drbg.split master "topology")
          ~tiers ~extra_peering:peering
      in
      let ases = G.Topology.ases topo in
      Printf.printf
        "engine: %d ASes, %d links; seed=%d epochs=%d jobs=%d cache=%b \
         salt_every=%d turnover=%.2f\n%!"
        (G.Topology.size topo)
        (List.length (G.Topology.links topo))
        seed epochs jobs cache salt_every turnover;
      Printf.printf "Generating %d RSA-%d keys...\n%!" (List.length ases) bits;
      let keyring = P.Keyring.create ~bits (C.Drbg.split master "keys") ases in
      let sim = G.Simulator.create topo in
      (* Churn origins: the highest-numbered (bottom-tier) ASes. *)
      let origin_list =
        let sorted = List.sort (fun a b -> G.Asn.compare b a) ases in
        List.filteri (fun i _ -> i < origins) sorted |> List.rev
      in
      let churn =
        G.Update_gen.Churn.create ~anycast ~origins:origin_list
          ~prefixes_per_origin ()
      in
      let churn_rng = C.Drbg.split master "churn" in
      let faults =
        if drop > 0.0 then
          Some
            {
              P.Runner.perfect_faults with
              fp_policy = Pvr_net.faulty ~drop ();
            }
        else None
      in
      let eng =
        Pvr_engine.Engine.create ~jobs ~cache ~salt_every ?faults
          (C.Drbg.split master "engine")
          keyring ~topology:topo ~sim ()
      in
      for i = 1 to epochs do
        let apply sim =
          if i = 1 then List.length (G.Update_gen.Churn.seed churn sim)
          else
            List.length (G.Update_gen.Churn.step churn_rng ~turnover churn sim)
        in
        let r = Pvr_engine.Engine.epoch ~apply eng in
        print_endline (Pvr_engine.Engine.report_line r);
        if r.Pvr_engine.Engine.ep_convicted > 0 then failed := true
      done;
      Printf.printf "engine digest: %s\n" (Pvr_engine.Engine.digest eng));
  if !failed then exit 1

(* ---- check ----------------------------------------------------------------- *)

let run_check file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match R.Compiler.parse src with
  | Error e ->
      Format.eprintf "%s: %a@." file R.Compiler.pp_error e;
      exit 1
  | Ok config ->
      Format.printf "parsed policy for %a: %d promises@." G.Asn.pp
        config.R.Compiler.owner
        (List.length config.R.Compiler.promises);
      let neighbors =
        (* All ASes mentioned in import blocks serve as the neighbor set. *)
        List.map fst config.R.Compiler.imports
      in
      List.iter
        (fun (beneficiary, promise, rfg) ->
          let issues =
            R.Static_check.implements rfg ~promise ~beneficiary ~neighbors
          in
          Format.printf "promise to %a (%s): %s@." G.Asn.pp beneficiary
            (R.Promise.describe promise)
            (if issues = [] then "OK"
             else
               String.concat "; "
                 (List.map
                    (Format.asprintf "%a" R.Static_check.pp_issue)
                    issues)))
        (R.Compiler.compile config ~neighbors)

(* ---- topology --------------------------------------------------------------- *)

let run_topology tiers peering seed stats =
  with_stats stats @@ fun () ->
  let rng = C.Drbg.of_int_seed seed in
  let tiers = List.map int_of_string (String.split_on_char ',' tiers) in
  let topo = G.Topology.hierarchy rng ~tiers ~extra_peering:peering in
  Printf.printf "topology: %d ASes, %d links\n" (G.Topology.size topo)
    (List.length (G.Topology.links topo));
  let sim = G.Simulator.create topo in
  let prefix = G.Prefix.of_string "198.51.100.0/24" in
  let origin = asn (G.Topology.size topo) in
  G.Simulator.originate sim ~asn:origin prefix;
  let msgs = G.Simulator.run sim in
  let reached =
    List.length
      (List.filter
         (fun a -> G.Simulator.best_route sim ~asn:a prefix <> None)
         (G.Topology.ases topo))
  in
  Printf.printf "converged in %d messages; %d/%d ASes reach %s's prefix\n" msgs
    reached (G.Topology.size topo) (G.Asn.to_string origin)

(* ---- primitives ------------------------------------------------------------- *)

let run_primitives bits stats =
  with_stats stats @@ fun () ->
  let rng = C.Drbg.of_int_seed 1 in
  Printf.printf "RSA-%d keygen...\n%!" bits;
  let key = C.Rsa.generate rng ~bits in
  let time_ms f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.3 do
      ignore (f ());
      incr n
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int !n
  in
  Printf.printf "sha256 64B   : %.4f ms\n"
    (time_ms (fun () -> C.Sha256.digest (String.make 64 'x')));
  Printf.printf "rsa sign     : %.4f ms (paper, 2011: ~2 ms for RSA-1024)\n"
    (time_ms (fun () -> C.Rsa.sign key "payload"));
  let s = C.Rsa.sign key "payload" in
  Printf.printf "rsa verify   : %.4f ms\n"
    (time_ms (fun () -> C.Rsa.verify key.C.Rsa.pub ~msg:"payload" ~signature:s))

(* ---- cmdliner wiring ----------------------------------------------------------- *)

open Cmdliner

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect pvr_obs metrics (crypto op counts, wire bytes, spans) \
           during the command and print the JSON snapshot on exit.")

let round_cmd =
  let behaviour =
    Arg.(
      value
      & opt behaviour_conv P.Adversary.Honest
      & info [ "behaviour"; "b" ] ~doc:"Prover behaviour.")
  in
  let k =
    Arg.(value & opt int 4 & info [ "k" ] ~doc:"Number of providers.")
  in
  let bits =
    Arg.(value & opt int 1024 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"DRBG seed.") in
  let dump =
    Arg.(
      value & flag
      & info [ "dump-evidence" ]
          ~doc:"Print each piece of evidence in transportable hex form.")
  in
  Cmd.v
    (Cmd.info "round" ~doc:"Run one Figure-1 verification round")
    Term.(const run_round $ behaviour $ k $ bits $ seed $ dump $ stats_arg)

let soak_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master DRBG seed; the whole soak (keys, routes, fault schedules) and its output are a deterministic function of it.") in
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Rounds per behaviour.")
  in
  let k =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Number of providers.")
  in
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let drop =
    Arg.(value & opt float 0.15 & info [ "drop" ] ~doc:"Per-message drop probability.")
  in
  let duplicate =
    Arg.(value & opt float 0.05 & info [ "duplicate" ] ~doc:"Per-message duplication probability.")
  in
  let delay =
    Arg.(value & opt int 2 & info [ "delay" ] ~doc:"Maximum extra delivery delay in ticks.")
  in
  let reorder =
    Arg.(value & flag & info [ "reorder" ] ~doc:"Shuffle same-tick deliveries.")
  in
  let budget =
    Arg.(value & opt int 3 & info [ "budget" ] ~doc:"ARQ retransmissions / disclosure re-requests before a timeout accusation.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Adversarial soak over a fault-injected network: asserts Accuracy \
          (honest never convicted) and Detection (Byzantine behaviours \
          convicted whenever their witnessing messages were delivered); \
          exits non-zero on any violation.")
    Term.(
      const run_soak $ seed $ rounds $ k $ bits $ drop $ duplicate $ delay
      $ reorder $ budget $ stats_arg)

let engine_cmd =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Master DRBG seed.  The whole run — topology, keys, churn, salts \
             — and the final digest are a deterministic function of it, for \
             any $(b,--jobs) value and cache setting.")
  in
  let tiers =
    Arg.(value & opt string "1,2,4" & info [ "tiers" ] ~doc:"ASes per tier.")
  in
  let peering =
    Arg.(
      value & opt float 0.1
      & info [ "peering" ] ~doc:"Same-tier peering probability.")
  in
  let epochs =
    Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Verification epochs.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~doc:"Worker domains for verification rounds.")
  in
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let cache =
    Arg.(
      value & opt bool true
      & info [ "cache" ]
          ~doc:
            "Incremental mode: skip clean vertices and memoize \
             commitments/signatures within a salt period.  $(b,--cache \
             false) recomputes everything every epoch (the E11 baseline).")
  in
  let salt_every =
    Arg.(
      value & opt int 8
      & info [ "salt-every" ] ~doc:"Epochs per commitment-salt period.")
  in
  let turnover =
    Arg.(
      value & opt float 0.2
      & info [ "turnover" ]
          ~doc:"Fraction of churn slots flipped per epoch (0..1).")
  in
  let origins =
    Arg.(
      value & opt int 4 & info [ "origins" ] ~doc:"Churn origin ASes (bottom tier).")
  in
  let prefixes_per_origin =
    Arg.(
      value & opt int 2
      & info [ "prefixes-per-origin" ] ~doc:"Churn prefixes per origin.")
  in
  let anycast =
    Arg.(
      value & opt int 1
      & info [ "anycast" ]
          ~doc:
            "Churn prefixes announced by two origins each (partial route \
             churn on live prefixes).")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ]
          ~doc:
            "Per-message drop probability; non-zero routes every round \
             through the fault-injected network.")
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Continuously verify every promising AS of a churning topology \
          with the incremental multi-domain engine; exits non-zero if any \
          honest prover is convicted.")
    Term.(
      const run_engine $ seed $ tiers $ peering $ epochs $ jobs $ bits $ cache
      $ salt_every $ turnover $ origins $ prefixes_per_origin $ anycast $ drop
      $ stats_arg)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and statically check a policy file")
    Term.(const run_check $ file)

let topology_cmd =
  let tiers =
    Arg.(value & opt string "2,4,8" & info [ "tiers" ] ~doc:"ASes per tier.")
  in
  let peering =
    Arg.(value & opt float 0.1 & info [ "peering" ] ~doc:"Same-tier peering probability.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"DRBG seed.") in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate a hierarchy and run BGP to convergence")
    Term.(const run_topology $ tiers $ peering $ seed $ stats_arg)

let primitives_cmd =
  let bits =
    Arg.(value & opt int 1024 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  Cmd.v
    (Cmd.info "primitives" ~doc:"Time the §3.8 crypto primitives")
    Term.(const run_primitives $ bits $ stats_arg)

let () =
  let info =
    Cmd.info "pvr" ~version:"1.0.0"
      ~doc:"Private and verifiable interdomain routing (HotNets-X 2011)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            round_cmd;
            soak_cmd;
            engine_cmd;
            check_cmd;
            topology_cmd;
            primitives_cmd;
          ]))
