(* pvr: command-line driver for the PVR library.

     pvr round --behaviour false-bits -k 8     run one Figure-1 round
     pvr check <config-file>                   parse + static-check a policy
     pvr topology --tiers 2,4,8                BGP convergence statistics
     pvr primitives                            crypto primitive timings
     pvr engine --checkpoint DIR --resume      durable continuous verification
     pvr crashsoak --seed 42                   kill/resume crash-recovery soak

   Exit codes (engine, soak, crashsoak): 0 success, 1 property violation
   (conviction of an honest prover, soak violation, digest divergence),
   2 usage error, 3 unrecoverable store. *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg
module C = Pvr_crypto
module Obs = Pvr_obs

let asn = G.Asn.of_int

(* Shared --stats behaviour: enable the pvr_obs registry for the command
   and print the JSON snapshot (op counts, byte counts, span histograms)
   when it finishes. *)
let with_stats stats f =
  if not stats then f ()
  else begin
    Obs.set_enabled true;
    Obs.reset_all ();
    Fun.protect
      ~finally:(fun () ->
        print_endline
          (Obs.Json.to_string (Obs.Snapshot.to_json (Obs.Snapshot.capture ()))))
      f
  end

(* ---- round ---------------------------------------------------------------- *)

let behaviour_conv =
  let parse s =
    match
      List.find_opt (fun b -> P.Adversary.to_string b = s) P.Adversary.all
    with
    | Some b -> Ok b
    | None ->
        Error
          (`Msg
            ("unknown behaviour; one of: "
            ^ String.concat ", " (List.map P.Adversary.to_string P.Adversary.all)))
  in
  let print ppf b = Format.pp_print_string ppf (P.Adversary.to_string b) in
  Cmdliner.Arg.conv (parse, print)

let strategy_conv =
  let parse s =
    match P.Adversary.strategy_of_string s with
    | Some st -> Ok st
    | None ->
        Error
          (`Msg
            ("unknown strategy; one of: "
            ^ String.concat ", "
                (List.map P.Adversary.strategy_to_string
                   P.Adversary.all_strategies)
            ^ ", or any behaviour name for a sweep of it"))
  in
  let print ppf st =
    Format.pp_print_string ppf (P.Adversary.strategy_to_string st)
  in
  Cmdliner.Arg.conv (parse, print)

let run_round behaviour k bits seed dump_evidence stats =
  with_stats stats (fun () ->
  let failed = ref false in
  let rng = C.Drbg.of_int_seed seed in
  let a = asn 1 and b = asn 100 in
  let providers = List.init k (fun i -> asn (10 + i)) in
  Printf.printf "Generating %d RSA-%d keys...\n%!" (k + 2) bits;
  let keyring = P.Keyring.create ~bits rng (a :: b :: providers) in
  let prefix = G.Prefix.of_string "203.0.113.0/24" in
  let routes =
    List.mapi
      (fun i n ->
        let len = 1 + (i mod 8) in
        let path =
          List.init len (fun j -> if j = 0 then n else asn (8000 + j))
        in
        let base = G.Route.originate ~asn:n prefix in
        (n, { base with G.Route.as_path = path; next_hop = n }))
      providers
  in
  let r =
    P.Runner.min_round behaviour rng keyring ~prover:a ~beneficiary:b ~epoch:1
      ~prefix ~routes
  in
  Printf.printf "behaviour=%s detected=%b convicted=%b messages=%d\n"
    (P.Adversary.to_string behaviour)
    r.P.Runner.detected r.P.Runner.convicted r.P.Runner.messages;
  List.iter
    (fun (_, e, v) ->
      Printf.printf "  [%s] %s\n" (P.Judge.verdict_to_string v)
        (P.Evidence.describe e);
      if dump_evidence then
        Printf.printf "    transportable evidence (hex): %s...\n"
          (String.sub (P.Evidence_codec.to_hex e) 0
             (min 96 (String.length (P.Evidence_codec.to_hex e)))))
    r.P.Runner.judged;
  if behaviour = P.Adversary.Honest && r.P.Runner.detected then failed := true;
  if !failed then 1 else 0)

(* ---- soak ------------------------------------------------------------------- *)

(* Adversarial soak under an unreliable network: every behaviour, [rounds]
   times, over fault-injected links.  Asserts the §2.3 properties the whole
   way: Honest is never convicted (Accuracy), and any Byzantine behaviour
   whose witnessing messages were delivered is detected and convicted
   (Detection/Evidence).  All randomness derives from --seed, so the output
   is byte-identical across runs with the same arguments. *)
let run_soak seed rounds k bits drop duplicate delay reorder budget stats =
  with_stats stats (fun () ->
      let master = C.Drbg.of_int_seed seed in
      let a = asn 1 and b = asn 100 in
      let providers = List.init k (fun i -> asn (10 + i)) in
      Printf.printf
        "soak: seed=%d rounds=%d k=%d drop=%.2f duplicate=%.2f delay=%d \
         reorder=%b budget=%d\n%!"
        seed rounds k drop duplicate delay reorder budget;
      let keyring =
        P.Keyring.create ~bits (C.Drbg.split master "keys") (a :: b :: providers)
      in
      let policy =
        Pvr_net.faulty ~drop ~duplicate ~delay_max:delay ~reorder ()
      in
      let faults =
        {
          P.Runner.perfect_faults with
          fp_policy = policy;
          fp_retry_budget = budget;
        }
      in
      let max_path_len = 8 in
      let prefix = G.Prefix.of_string "203.0.113.0/24" in
      let violations = ref 0 in
      let required = ref 0 in
      let retries = ref 0 and timeouts = ref 0 and drops = ref 0 in
      for i = 1 to rounds do
        let round_rng = C.Drbg.split master (Printf.sprintf "round-%d" i) in
        let routes =
          List.map
            (fun n ->
              let len = 1 + C.Drbg.uniform_int round_rng max_path_len in
              let path =
                List.init len (fun j ->
                    if j = 0 then n else asn (8000 + (100 * i) + j))
              in
              let base = G.Route.originate ~asn:n prefix in
              (n, { base with G.Route.as_path = path; next_hop = n }))
            providers
        in
        List.iter
          (fun beh ->
            let rng =
              C.Drbg.split master
                (Printf.sprintf "round-%d.%s" i (P.Adversary.to_string beh))
            in
            let nr =
              P.Runner.min_round_faulty ~max_path_len ~faults beh rng keyring
                ~prover:a ~beneficiary:b ~epoch:i ~prefix ~routes
            in
            let r = nr.P.Runner.base in
            let must =
              beh <> P.Adversary.Honest
              && P.Runner.detection_expected beh ~beneficiary:b ~routes nr
            in
            if must then incr required;
            retries := !retries + nr.P.Runner.net_retries;
            timeouts := !timeouts + nr.P.Runner.net_timeouts;
            drops := !drops + nr.P.Runner.net_drops + nr.P.Runner.gossip_drops;
            let bad_accuracy =
              beh = P.Adversary.Honest && r.P.Runner.convicted
            in
            let bad_detection =
              must && not (r.P.Runner.detected && r.P.Runner.convicted)
            in
            if bad_accuracy || bad_detection then begin
              incr violations;
              Printf.printf "VIOLATION round=%d behaviour=%s accuracy=%b \
                             detection=%b\n"
                i (P.Adversary.to_string beh) bad_accuracy bad_detection
            end;
            Printf.printf
              "round=%-3d behaviour=%-18s detected=%-5b convicted=%-5b \
               required=%-5b retries=%d timeouts=%d drops=%d\n"
              i (P.Adversary.to_string beh) r.P.Runner.detected
              r.P.Runner.convicted must nr.P.Runner.net_retries
              nr.P.Runner.net_timeouts
              (nr.P.Runner.net_drops + nr.P.Runner.gossip_drops))
          P.Adversary.all
      done;
      Printf.printf
        "soak summary: runs=%d required_detections=%d retries=%d timeouts=%d \
         drops=%d violations=%d\n"
        (rounds * List.length P.Adversary.all)
        !required !retries !timeouts !drops !violations;
      if !violations > 0 then 1 else 0)

(* ---- engine ----------------------------------------------------------------- *)

(* Continuous topology-wide verification: a hierarchy topology under churn,
   every promising AS re-verified each epoch by the incremental engine.
   Same determinism contract as soak — everything derives from --seed — plus
   the engine's own: the digest is identical for any --jobs value and for
   the cache on or off.  With --checkpoint the run journals every epoch and
   snapshots on a cadence, and --resume continues a crashed run. *)

(* The engine parameter record, world construction and the epoch loop are
   factored into {!Pvr_serve.Workload} so that daemon sessions (`pvr
   serve`) and these batch commands run the identical code path — the
   serve-vs-batch digest differential holds by construction.  The type
   equation re-exports the record so the flag terms below construct it
   literally. *)

type eparams = Pvr_serve.Workload.params = {
  p_seed : int;
  p_tiers : string;
  p_peering : float;
  p_ases : int; (* > 0: power-law generated topology instead of --tiers *)
  p_gen_seed : int option;
  p_epochs : int;
  p_jobs : int;
  p_shards : int;
  p_intern : bool;
  p_bits : int;
  p_cache : bool;
  p_salt_every : int;
  p_turnover : float;
  p_origins : int;
  p_ppo : int;
  p_anycast : int;
  p_drop : float;
  p_strategy : P.Adversary.strategy;
  p_mem_ceiling : int; (* major-heap budget in words; 0 = unbounded *)
  p_spill : bool; (* page cold vertex state out through the store *)
}

let build_world = Pvr_serve.Workload.build_world
let engine_core = Pvr_serve.Workload.engine_core

let run_engine p checkpoint resume checkpoint_every no_fsync report stats =
  if resume && checkpoint = None then begin
    Printf.eprintf "pvr engine: --resume requires --checkpoint DIR\n%!";
    2
  end
  else
    with_stats stats (fun () ->
        let world = build_world p in
        match
          engine_core ?checkpoint_dir:checkpoint ~resume ~checkpoint_every
            ~fsync:(not no_fsync) world p
        with
        | Error e ->
            Printf.eprintf "pvr engine: unrecoverable store: %s\n%!" e;
            3
        | Ok (digest, convicted) ->
            Printf.printf "engine digest: %s\n" digest;
            Option.iter
              (fun file ->
                Pvr_store.Atomic_file.write ~fsync:false file
                  (Printf.sprintf
                     "{ \"seed\": %d, \"epochs\": %d, \"jobs\": %d, \"cache\": \
                      %b, \"convicted\": %d, \"digest\": \"%s\" }\n"
                     p.p_seed p.p_epochs p.p_jobs p.p_cache convicted digest))
              report;
            if convicted > 0 then 1 else 0)

(* ---- crashsoak -------------------------------------------------------------- *)

(* Crash-recovery soak: run the checkpointed engine in forked children,
   SIGKILL each child at a seeded (epoch, phase) point, optionally corrupt
   the store between restarts, resume, and finally compare the recovered
   digest against an uninterrupted in-process run of the same seed.  The
   kill/corruption schedule derives from --seed via an independent DRBG
   stream, so failures reproduce exactly. *)

exception Crashsoak_abort of int

(* Spill runs add the two paging barriers to the kill pool.  A scheduled
   spill/unspill kill may never fire in an epoch with no paging activity —
   the child then finishes early, which the soak loop tolerates. *)
let phases ~spill =
  if spill then [| "apply"; "collect"; "unspill"; "verify"; "spill"; "record" |]
  else [| "apply"; "collect"; "verify"; "record" |]

(* [kills] distinct kill epochs in 1..epochs (partial Fisher-Yates), each
   with a random phase; sorted so each restart makes forward progress. *)
let kill_schedule rng ~phases ~epochs ~kills =
  let pool = Array.init epochs (fun i -> i + 1) in
  for i = 0 to kills - 1 do
    let j = i + C.Drbg.uniform_int rng (epochs - i) in
    let t = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- t
  done;
  Array.sub pool 0 kills |> Array.to_list |> List.sort compare
  |> List.map (fun e -> (e, phases.(C.Drbg.uniform_int rng (Array.length phases))))

let flip_byte rng path what =
  try
    let len = (Unix.stat path).Unix.st_size in
    if len > 0 then begin
      let off = C.Drbg.uniform_int rng len in
      let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          ignore (Unix.lseek fd off Unix.SEEK_SET);
          let b = Bytes.create 1 in
          if Unix.read fd b 0 1 = 1 then begin
            Bytes.set b 0
              (Char.chr
                 (Char.code (Bytes.get b 0) lxor (1 lsl C.Drbg.uniform_int rng 8)));
            ignore (Unix.lseek fd off Unix.SEEK_SET);
            ignore (Unix.write fd b 0 1)
          end);
      Printf.printf "crashsoak: corrupted %s (bit flip at offset %d)\n%!" what
        off
    end
  with Unix.Unix_error _ | Sys_error _ -> ()

let inject_corruption rng dir =
  let journal = Pvr_store.Store.journal_path ~dir in
  match C.Drbg.uniform_int rng 4 with
  | 0 -> (
      (* Tear the journal tail, as an interrupted write would. *)
      try
        let len = (Unix.stat journal).Unix.st_size in
        if len > 0 then begin
          let cut = 1 + C.Drbg.uniform_int rng (min 24 len) in
          let fd = Unix.openfile journal [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd (len - cut);
          Unix.close fd;
          Printf.printf "crashsoak: corrupted journal (tore %d tail bytes)\n%!"
            cut
        end
      with Unix.Unix_error _ | Sys_error _ -> ())
  | 1 -> flip_byte rng journal "journal"
  | 2 -> (
      (* Append garbage after the last frame. *)
      try
        let n = 1 + C.Drbg.uniform_int rng 16 in
        let junk =
          String.init n (fun _ -> Char.chr (C.Drbg.uniform_int rng 256))
        in
        let oc =
          open_out_gen [ Open_append; Open_creat; Open_binary ] 0o644 journal
        in
        output_string oc junk;
        close_out oc;
        Printf.printf "crashsoak: corrupted journal (%d garbage bytes)\n%!" n
      with Sys_error _ -> ())
  | _ -> (
      (* Flip a byte in the newest snapshot, if any. *)
      match
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               String.length f > 9
               && String.sub f 0 5 = "snap-"
               && Filename.check_suffix f ".pvrs")
        |> List.sort (fun a b -> compare b a)
      with
      | newest :: _ -> flip_byte rng (Filename.concat dir newest) "snapshot"
      | [] -> flip_byte rng journal "journal"
      | exception Sys_error _ -> ())

let run_crashsoak p kills checkpoint_every dir_opt no_corrupt keep stats =
  if kills > p.p_epochs then begin
    Printf.eprintf "pvr crashsoak: --kills (%d) must be <= --epochs (%d)\n%!"
      kills p.p_epochs;
    2
  end
  else
    with_stats stats (fun () ->
        let dir =
          match dir_opt with
          | Some d -> d
          | None ->
              Filename.concat
                (Filename.get_temp_dir_name ())
                (Printf.sprintf "pvr-crashsoak-%d" (Unix.getpid ()))
        in
        Pvr_store.Store.reset ~dir;
        let sched = C.Drbg.split (C.Drbg.of_int_seed p.p_seed) "crashsoak" in
        let points =
          kill_schedule sched ~phases:(phases ~spill:p.p_spill)
            ~epochs:p.p_epochs ~kills
        in
        Printf.printf "crashsoak: seed=%d dir=%s kill schedule: %s\n%!" p.p_seed
          dir
          (String.concat ", "
             (List.map (fun (e, ph) -> Printf.sprintf "%d/%s" e ph) points));
        let world = build_world p in
        (* Children fork with pristine copies of the world's DRBGs and churn
           state, so every restart replays the exact streams a fresh
           `pvr engine --seed S` would see. *)
        let run_child point =
          flush stdout;
          flush stderr;
          match Unix.fork () with
          | 0 ->
              let code =
                try
                  let on_phase =
                    match point with
                    | None -> fun ~epoch:_ (_ : string) -> ()
                    | Some (ke, kph) ->
                        fun ~epoch ph ->
                          if epoch = ke && ph = kph then
                            Unix.kill (Unix.getpid ()) Sys.sigkill
                  in
                  match
                    engine_core ~quiet:true ~on_phase ~checkpoint_dir:dir
                      ~resume:true ~checkpoint_every ~fsync:true world p
                  with
                  | Ok (_, convicted) -> if convicted > 0 then 1 else 0
                  | Error _ -> 3
                with _ -> 125
              in
              Unix._exit code
          | pid ->
              let _, status = Unix.waitpid [] pid in
              status
        in
        let code =
          try
            List.iteri
              (fun i (ke, kph) ->
                Printf.printf "crashsoak: run %d/%d — kill at epoch=%d phase=%s\n%!"
                  (i + 1) (kills + 1) ke kph;
                (match run_child (Some (ke, kph)) with
                | Unix.WSIGNALED s when s = Sys.sigkill -> ()
                | Unix.WEXITED 3 ->
                    Printf.eprintf "crashsoak: child found the store unrecoverable\n%!";
                    raise (Crashsoak_abort 3)
                | Unix.WEXITED c ->
                    Printf.printf
                      "crashsoak: child finished (exit %d) before its kill point\n%!"
                      c
                | Unix.WSIGNALED s | Unix.WSTOPPED s ->
                    Printf.eprintf "crashsoak: child died unexpectedly (signal %d)\n%!" s;
                    raise (Crashsoak_abort 3));
                if not no_corrupt then inject_corruption sched dir)
              points;
            Printf.printf "crashsoak: run %d/%d — final resume to completion\n%!"
              (kills + 1) (kills + 1);
            (match run_child None with
            | Unix.WEXITED 0 -> ()
            | Unix.WEXITED 1 -> raise (Crashsoak_abort 1)
            | _ -> raise (Crashsoak_abort 3));
            (* Recovered digest: the highest-epoch journal frame. *)
            let rc = Pvr_store.Store.recover ~quiet:true ~dir () in
            let final =
              List.fold_left
                (fun acc payload ->
                  match Pvr_engine.Persist.decode_epoch payload with
                  | Ok er -> (
                      match acc with
                      | Some best
                        when best.Pvr_engine.Persist.er_epoch >= er.er_epoch ->
                          acc
                      | _ -> Some er)
                  | Error _ -> acc)
                None rc.Pvr_store.Store.rc_frames
            in
            match final with
            | None ->
                Printf.eprintf "crashsoak: no recoverable final epoch in %s\n%!"
                  dir;
                3
            | Some er when er.Pvr_engine.Persist.er_epoch <> p.p_epochs ->
                Printf.eprintf
                  "crashsoak: recovered run stops at epoch %d, expected %d\n%!"
                  er.Pvr_engine.Persist.er_epoch p.p_epochs;
                3
            | Some er -> (
                (* Uninterrupted reference run, same seed, in-process. *)
                let world2 = build_world ~quiet:true p in
                match engine_core ~quiet:true world2 p with
                | Error e ->
                    Printf.eprintf "crashsoak: reference run failed: %s\n%!" e;
                    3
                | Ok (clean, _) ->
                    if clean = er.Pvr_engine.Persist.er_digest then begin
                      Printf.printf
                        "crashsoak: OK — digest %s identical after %d kills \
                         and resumes\n"
                        clean kills;
                      0
                    end
                    else begin
                      Printf.printf
                        "crashsoak: DIGEST DIVERGENCE recovered=%s clean=%s\n"
                        er.Pvr_engine.Persist.er_digest clean;
                      1
                    end)
          with Crashsoak_abort c -> c
        in
        if code = 0 && dir_opt = None && not keep then
          (try
             Array.iter
               (fun f -> Sys.remove (Filename.concat dir f))
               (Sys.readdir dir);
             Unix.rmdir dir
           with Sys_error _ | Unix.Unix_error _ -> ());
        code)

(* ---- adversary --------------------------------------------------------------

   The E14 surface as a command: run the strategy zoo over a generated
   power-law internet whose promises span the tiered /8–/16–/24 address
   plan, and print one deterministic matrix line per (strategy, prefix
   family).  Every vertex routes through the fault runner (perfect links)
   so the disclosure ledger and leakage audit are live even for honest
   plans.  Exit 1 on any undetected cheat whose witnessing messages were
   delivered, any non-complying cheat not convicted, any convicted
   stonewalling-but-complying prover, or any honest vertex with excess
   bits. *)

type row = {
  mutable r_vertices : int;
  mutable r_cheats : int;
  mutable r_detected : int;
  mutable r_convicted : int;
  mutable r_leaked : int;
  mutable r_excess : int;
}

let family_lens = [ 8; 16; 24 ]

let resolve_strategies spec coalition =
  let override s =
    match (s, coalition) with
    | P.Adversary.Coalition { behaviour; _ }, Some size ->
        P.Adversary.Coalition { size; behaviour }
    | s, _ -> s
  in
  if spec = "all" then Ok (List.map override P.Adversary.all_strategies)
  else
    match P.Adversary.strategy_of_string spec with
    | Some s -> Ok [ override s ]
    | None -> Error spec

let run_adversary spec coalition seed ases epochs jobs bits stats =
  match resolve_strategies spec coalition with
  | Error s ->
      Printf.eprintf "pvr adversary: unknown strategy %S; one of: all, %s\n%!"
        s
        (String.concat ", "
           (List.map P.Adversary.strategy_to_string P.Adversary.all_strategies));
      2
  | Ok strategies ->
      with_stats stats @@ fun () ->
      let module E = Pvr_engine.Engine in
      let master = C.Drbg.of_int_seed seed in
      let topo =
        G.Topology.generate
          (C.Drbg.split master "topology")
          ~extra_peering:0.1 ~ases ()
      in
      let plan = G.Topology.tiered_prefixes topo in
      Printf.printf "Generating %d RSA-%d keys...\n%!" (G.Topology.size topo)
        bits;
      let keyring =
        P.Keyring.create ~bits (C.Drbg.split master "keys")
          (G.Topology.ases topo)
      in
      Printf.printf
        "adversary: seed=%d ases=%d links=%d epochs=%d prefixes=%d \
         strategies=%d\n%!"
        seed (G.Topology.size topo)
        (List.length (G.Topology.links topo))
        epochs (List.length plan) (List.length strategies);
      let violations = ref 0 in
      let violation fmt =
        Printf.ksprintf
          (fun msg ->
            incr violations;
            Printf.printf "VIOLATION %s\n" msg)
          fmt
      in
      List.iter
        (fun strategy ->
          let name = P.Adversary.strategy_to_string strategy in
          let complying =
            match strategy with
            | P.Adversary.Timing_probe _ -> true
            | _ -> false
          in
          let sim = G.Simulator.create topo in
          List.iter (fun (a, p) -> G.Simulator.originate sim ~asn:a p) plan;
          let eng =
            E.create ~jobs ~salt_every:1 ~strategy
              ~faults:P.Runner.perfect_faults
              (C.Drbg.split master ("engine-" ^ name))
              keyring ~topology:topo ~sim ()
          in
          let rows = Hashtbl.create 4 in
          let row len =
            match Hashtbl.find_opt rows len with
            | Some r -> r
            | None ->
                let r =
                  {
                    r_vertices = 0;
                    r_cheats = 0;
                    r_detected = 0;
                    r_convicted = 0;
                    r_leaked = 0;
                    r_excess = 0;
                  }
                in
                Hashtbl.replace rows len r;
                r
          in
          for _ = 1 to epochs do
            let r = E.epoch eng in
            List.iter
              (fun o ->
                let len = o.E.vx_vertex.E.vprefix.G.Prefix.len in
                let vertex =
                  Printf.sprintf "%s %s"
                    (G.Asn.to_string o.E.vx_vertex.E.vprover)
                    (G.Prefix.to_string o.E.vx_vertex.E.vprefix)
                in
                let row = row len in
                row.r_vertices <- row.r_vertices + 1;
                row.r_leaked <- row.r_leaked + o.E.vx_leaked_bits;
                row.r_excess <- row.r_excess + o.E.vx_excess_bits;
                if o.E.vx_behaviour <> P.Adversary.Honest then begin
                  row.r_cheats <- row.r_cheats + 1;
                  if o.E.vx_detected then row.r_detected <- row.r_detected + 1;
                  if o.E.vx_convicted then
                    row.r_convicted <- row.r_convicted + 1;
                  let required =
                    match o.E.vx_net with
                    | Some nr ->
                        P.Runner.detection_expected o.E.vx_behaviour
                          ~beneficiary:o.E.vx_beneficiary ~routes:o.E.vx_routes
                          nr
                    | None -> false
                  in
                  if required && not o.E.vx_detected then
                    violation "undetected cheat strategy=%s vertex=%s" name
                      vertex;
                  if complying then begin
                    if o.E.vx_convicted then
                      violation
                        "stonewalling-but-complying prover convicted \
                         strategy=%s vertex=%s"
                        name vertex
                  end
                  else if required && not o.E.vx_convicted then
                    violation "unconvicted cheat strategy=%s vertex=%s" name
                      vertex
                end
                else begin
                  if o.E.vx_convicted then
                    violation "honest prover convicted strategy=%s vertex=%s"
                      name vertex;
                  if o.E.vx_excess_bits > 0 then
                    violation
                      "honest vertex leaks %d excess bit(s) strategy=%s \
                       vertex=%s"
                      o.E.vx_excess_bits name vertex
                end)
              r.E.ep_outcomes
          done;
          List.iter
            (fun len ->
              match Hashtbl.find_opt rows len with
              | None -> ()
              | Some r ->
                  Printf.printf
                    "strategy=%-22s family=/%-2d vertices=%-3d cheats=%-3d \
                     detected=%-3d convicted=%-3d leaked_bits=%-5d \
                     excess_bits=%d\n"
                    name len r.r_vertices r.r_cheats r.r_detected
                    r.r_convicted r.r_leaked r.r_excess)
            family_lens;
          Printf.printf "strategy=%-22s digest=%s\n" name (E.digest eng))
        strategies;
      Printf.printf "adversary summary: violations=%d\n" !violations;
      if !violations > 0 then 1 else 0

(* ---- check ----------------------------------------------------------------- *)

let run_check file =
  let src = In_channel.with_open_text file In_channel.input_all in
  match R.Compiler.parse src with
  | Error e ->
      Format.eprintf "%s: %a@." file R.Compiler.pp_error e;
      1
  | Ok config ->
      Format.printf "parsed policy for %a: %d promises@." G.Asn.pp
        config.R.Compiler.owner
        (List.length config.R.Compiler.promises);
      let neighbors =
        (* All ASes mentioned in import blocks serve as the neighbor set. *)
        List.map fst config.R.Compiler.imports
      in
      List.iter
        (fun (beneficiary, promise, rfg) ->
          let issues =
            R.Static_check.implements rfg ~promise ~beneficiary ~neighbors
          in
          Format.printf "promise to %a (%s): %s@." G.Asn.pp beneficiary
            (R.Promise.describe promise)
            (if issues = [] then "OK"
             else
               String.concat "; "
                 (List.map
                    (Format.asprintf "%a" R.Static_check.pp_issue)
                    issues)))
        (R.Compiler.compile config ~neighbors);
      0

(* ---- topology --------------------------------------------------------------- *)

let run_topology tiers peering ases seed stats =
  with_stats stats @@ fun () ->
  let rng = C.Drbg.of_int_seed seed in
  let topo =
    if ases > 0 then G.Topology.generate rng ~extra_peering:peering ~ases ()
    else
      let tiers = List.map int_of_string (String.split_on_char ',' tiers) in
      G.Topology.hierarchy rng ~tiers ~extra_peering:peering
  in
  Printf.printf "topology: %d ASes, %d links\n" (G.Topology.size topo)
    (List.length (G.Topology.links topo));
  if ases > 0 then begin
    (* Tier histogram + the tier-sized address plan of the generated
       internet, then the usual convergence run. *)
    let tier_map = G.Topology.tiers topo in
    let hist = Hashtbl.create 8 in
    G.Asn.Map.iter
      (fun _ t ->
        Hashtbl.replace hist t
          (1 + Option.value (Hashtbl.find_opt hist t) ~default:0))
      tier_map;
    let tiers_sorted =
      Hashtbl.fold (fun t n acc -> (t, n) :: acc) hist []
      |> List.sort compare
    in
    List.iter
      (fun (t, n) -> Printf.printf "  tier %d: %d ASes\n" t n)
      tiers_sorted;
    let plan = G.Topology.tiered_prefixes topo in
    let count_len l =
      List.length
        (List.filter (fun (_, p) -> p.G.Prefix.len = l) plan)
    in
    Printf.printf "  address plan: %d /8 + %d /16 + %d /24\n" (count_len 8)
      (count_len 16) (count_len 24)
  end;
  let sim = G.Simulator.create topo in
  let prefix = G.Prefix.of_string "198.51.100.0/24" in
  let origin = asn (G.Topology.size topo) in
  G.Simulator.originate sim ~asn:origin prefix;
  let msgs = G.Simulator.run sim in
  let reached =
    List.length
      (List.filter
         (fun a -> G.Simulator.best_route sim ~asn:a prefix <> None)
         (G.Topology.ases topo))
  in
  Printf.printf "converged in %d messages; %d/%d ASes reach %s's prefix\n" msgs
    reached (G.Topology.size topo) (G.Asn.to_string origin);
  0

(* ---- primitives ------------------------------------------------------------- *)

let run_primitives bits stats =
  with_stats stats @@ fun () ->
  let rng = C.Drbg.of_int_seed 1 in
  Printf.printf "RSA-%d keygen...\n%!" bits;
  let key = C.Rsa.generate rng ~bits in
  let time_ms f =
    ignore (f ());
    let t0 = Unix.gettimeofday () in
    let n = ref 0 in
    while Unix.gettimeofday () -. t0 < 0.3 do
      ignore (f ());
      incr n
    done;
    (Unix.gettimeofday () -. t0) *. 1000.0 /. float_of_int !n
  in
  Printf.printf "sha256 64B   : %.4f ms\n"
    (time_ms (fun () -> C.Sha256.digest (String.make 64 'x')));
  Printf.printf "rsa sign     : %.4f ms (paper, 2011: ~2 ms for RSA-1024)\n"
    (time_ms (fun () -> C.Rsa.sign key "payload"));
  let s = C.Rsa.sign key "payload" in
  Printf.printf "rsa verify   : %.4f ms\n"
    (time_ms (fun () -> C.Rsa.verify key.C.Rsa.pub ~msg:"payload" ~signature:s));
  0

(* ---- cmdliner wiring ----------------------------------------------------------- *)

open Cmdliner

let stats_arg =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:
          "Collect pvr_obs metrics (crypto op counts, wire bytes, spans) \
           during the command and print the JSON snapshot on exit.")

let round_cmd =
  let behaviour =
    Arg.(
      value
      & opt behaviour_conv P.Adversary.Honest
      & info [ "behaviour"; "b" ] ~doc:"Prover behaviour.")
  in
  let k =
    Arg.(value & opt int 4 & info [ "k" ] ~doc:"Number of providers.")
  in
  let bits =
    Arg.(value & opt int 1024 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"DRBG seed.") in
  let dump =
    Arg.(
      value & flag
      & info [ "dump-evidence" ]
          ~doc:"Print each piece of evidence in transportable hex form.")
  in
  Cmd.v
    (Cmd.info "round" ~doc:"Run one Figure-1 verification round")
    Term.(const run_round $ behaviour $ k $ bits $ seed $ dump $ stats_arg)

let soak_cmd =
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Master DRBG seed; the whole soak (keys, routes, fault schedules) and its output are a deterministic function of it.") in
  let rounds =
    Arg.(value & opt int 10 & info [ "rounds" ] ~doc:"Rounds per behaviour.")
  in
  let k =
    Arg.(value & opt int 3 & info [ "k" ] ~doc:"Number of providers.")
  in
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let drop =
    Arg.(value & opt float 0.15 & info [ "drop" ] ~doc:"Per-message drop probability.")
  in
  let duplicate =
    Arg.(value & opt float 0.05 & info [ "duplicate" ] ~doc:"Per-message duplication probability.")
  in
  let delay =
    Arg.(value & opt int 2 & info [ "delay" ] ~doc:"Maximum extra delivery delay in ticks.")
  in
  let reorder =
    Arg.(value & flag & info [ "reorder" ] ~doc:"Shuffle same-tick deliveries.")
  in
  let budget =
    Arg.(value & opt int 3 & info [ "budget" ] ~doc:"ARQ retransmissions / disclosure re-requests before a timeout accusation.")
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Adversarial soak over a fault-injected network: asserts Accuracy \
          (honest never convicted) and Detection (Byzantine behaviours \
          convicted whenever their witnessing messages were delivered); \
          exits non-zero on any violation.")
    Term.(
      const run_soak $ seed $ rounds $ k $ bits $ drop $ duplicate $ delay
      $ reorder $ budget $ stats_arg)

(* Engine/crashsoak share the run parameters: both must derive the exact
   same world from --seed for digests to be comparable. *)
let eparams_term =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Master DRBG seed.  The whole run — topology, keys, churn, salts \
             — and the final digest are a deterministic function of it, for \
             any $(b,--jobs) value and cache setting.")
  in
  let tiers =
    Arg.(value & opt string "1,2,4" & info [ "tiers" ] ~doc:"ASes per tier.")
  in
  let peering =
    Arg.(
      value & opt float 0.1
      & info [ "peering" ] ~doc:"Same-tier peering probability.")
  in
  let ases =
    Arg.(
      value & opt int 0
      & info [ "ases" ]
          ~doc:
            "Generate a seeded power-law (preferential-attachment) internet \
             of this many ASes instead of the $(b,--tiers) hierarchy.  0 \
             (default) keeps the hierarchy.")
  in
  let gen_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "gen-seed" ]
          ~doc:
            "Dedicated seed for $(b,--ases) topology generation — the same \
             internet under different run seeds.  Defaults to deriving the \
             topology from $(b,--seed).")
  in
  let epochs =
    Arg.(value & opt int 5 & info [ "epochs" ] ~doc:"Verification epochs.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~doc:"Worker domains for verification rounds.")
  in
  let shards =
    Arg.(
      value & opt int 0
      & info [ "shards" ]
          ~doc:
            "Static (prover, prefix) shard count: each vertex is pinned to \
             shard hash(vertex) mod $(docv) and each worker domain owns a \
             disjoint set of shards — no work stealing.  0 (default) keeps \
             dynamic scheduling.  The digest is identical either way.")
  in
  let intern =
    Arg.(
      value & opt bool false
      & info [ "intern" ]
          ~doc:
            "Hash-cons AS paths and routes (shared canonical storage, \
             pointer-equality fast paths, memoized encodings).  \
             Behaviour-identical: the digest is byte-identical with \
             interning on or off.")
  in
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  let cache =
    Arg.(
      value & opt bool true
      & info [ "cache" ]
          ~doc:
            "Incremental mode: skip clean vertices and memoize \
             commitments/signatures within a salt period.  $(b,--cache \
             false) recomputes everything every epoch (the E11 baseline).")
  in
  let salt_every =
    Arg.(
      value & opt int 8
      & info [ "salt-every" ] ~doc:"Epochs per commitment-salt period.")
  in
  let turnover =
    Arg.(
      value & opt float 0.2
      & info [ "turnover" ]
          ~doc:"Fraction of churn slots flipped per epoch (0..1).")
  in
  let origins =
    Arg.(
      value & opt int 4 & info [ "origins" ] ~doc:"Churn origin ASes (bottom tier).")
  in
  let prefixes_per_origin =
    Arg.(
      value & opt int 2
      & info [ "prefixes-per-origin" ] ~doc:"Churn prefixes per origin.")
  in
  let anycast =
    Arg.(
      value & opt int 1
      & info [ "anycast" ]
          ~doc:
            "Churn prefixes announced by two origins each (partial route \
             churn on live prefixes).")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ]
          ~doc:
            "Per-message drop probability; non-zero routes every round \
             through the fault-injected network.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv (P.Adversary.Sweep P.Adversary.Honest)
      & info [ "strategy" ]
          ~doc:
            "Adversary strategy planning per-vertex behaviours (default \
             honest).  Canonical names: honest, coalition-false-bits, \
             cross-shard-equivocate, adaptive-low-value, timing-probe; any \
             single behaviour name (e.g. equivocate) selects a sweep of \
             it.")
  in
  let mem_ceiling =
    Arg.(
      value & opt int 0
      & info [ "mem-ceiling" ] ~docv:"WORDS"
          ~doc:
            "Major-heap budget in words (the figure \
             $(b,engine.gc.heap_words) exports).  When the post-epoch heap \
             exceeds it the governor sheds load in stages — drop cold memo \
             tables, spill cold vertex state (with $(b,--spill)), throttle \
             carry-forward — all digest-invariant.  0 (default) is \
             unbounded.")
  in
  let spill =
    Arg.(
      value & flag
      & info [ "spill" ]
          ~doc:
            "Let the memory governor page cold (prover, prefix) vertex \
             state out to the store as CRC-framed journal pages, read back \
             transiently (or recomputed, identically) when needed.  Uses \
             the $(b,--checkpoint) store when given, else a scratch store \
             under the temp dir.  The digest is byte-identical with \
             spilling on or off.")
  in
  let make p_seed p_tiers p_peering p_ases p_gen_seed p_epochs p_jobs p_shards
      p_intern p_bits p_cache p_salt_every p_turnover p_origins p_ppo p_anycast
      p_drop p_strategy p_mem_ceiling p_spill =
    {
      p_seed;
      p_tiers;
      p_peering;
      p_ases;
      p_gen_seed;
      p_epochs;
      p_jobs;
      p_shards;
      p_intern;
      p_bits;
      p_cache;
      p_salt_every;
      p_turnover;
      p_origins;
      p_ppo;
      p_anycast;
      p_drop;
      p_strategy;
      p_mem_ceiling;
      p_spill;
    }
  in
  Term.(
    const make $ seed $ tiers $ peering $ ases $ gen_seed $ epochs $ jobs
    $ shards $ intern $ bits $ cache $ salt_every $ turnover $ origins
    $ prefixes_per_origin $ anycast $ drop $ strategy $ mem_ceiling $ spill)

let checkpoint_every_arg =
  Arg.(
    value & opt int 1
    & info [ "checkpoint-every" ]
        ~doc:
          "Epochs between full snapshots; the journal is still written \
           every epoch.  0 disables snapshots (resume replays the churn \
           stream from epoch 1).")

let engine_cmd =
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"DIR"
          ~doc:
            "Durable store directory: journal every epoch into \
             $(docv)/journal.pvrj and snapshot on the \
             $(b,--checkpoint-every) cadence.  Without $(b,--resume) any \
             existing store in $(docv) is reset.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Recover the store in $(b,--checkpoint) (truncating torn \
             frames, skipping corrupt snapshots), replay to the newest \
             durable epoch and continue from there.  Exits 3 when the \
             store belongs to a different run or cannot be validated.")
  in
  let no_fsync =
    Arg.(
      value & flag
      & info [ "no-fsync" ]
          ~doc:
            "Skip fsync barriers on journal appends and snapshot renames \
             (framing and recovery still work; durability is best-effort).")
  in
  let report =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Atomically write a one-line JSON run report (seed, epochs, \
             convictions, digest) to $(docv).")
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Continuously verify every promising AS of a churning topology \
          with the incremental multi-domain engine; exits non-zero if any \
          honest prover is convicted.  With --checkpoint/--resume the run \
          is crash-tolerant: it journals every epoch and can continue \
          after being killed, reproducing the exact digest of an \
          uninterrupted run.")
    Term.(
      const run_engine $ eparams_term $ checkpoint $ resume
      $ checkpoint_every_arg $ no_fsync $ report $ stats_arg)

let crashsoak_cmd =
  let kills =
    Arg.(
      value & opt int 3
      & info [ "kills" ]
          ~doc:
            "Distinct seeded kill points (epoch, phase); must not exceed \
             $(b,--epochs).")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 2
      & info [ "checkpoint-every" ]
          ~doc:
            "Epochs between snapshots in the children's store — 2 by \
             default so resume exercises both the snapshot restore and the \
             journal fast-forward paths.")
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Store directory (default: a fresh directory under the system \
             temp dir, removed on success).")
  in
  let no_corrupt =
    Arg.(
      value & flag
      & info [ "no-corrupt" ]
          ~doc:"Do not inject store corruption between restarts.")
  in
  let keep =
    Arg.(
      value & flag
      & info [ "keep" ] ~doc:"Keep the store directory even on success.")
  in
  Cmd.v
    (Cmd.info "crashsoak"
       ~doc:
         "Crash-recovery soak: fork the checkpointed engine, SIGKILL it at \
          seeded mid-epoch points, corrupt the store between restarts, \
          resume, and require the recovered digest to be byte-identical to \
          an uninterrupted run.  Exits 1 on digest divergence, 3 on an \
          unrecoverable store.")
    Term.(
      const run_crashsoak $ eparams_term $ kills $ checkpoint_every $ dir
      $ no_corrupt $ keep $ stats_arg)

let check_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"CONFIG")
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Parse and statically check a policy file")
    Term.(const run_check $ file)

let topology_cmd =
  let tiers =
    Arg.(value & opt string "2,4,8" & info [ "tiers" ] ~doc:"ASes per tier.")
  in
  let peering =
    Arg.(value & opt float 0.1 & info [ "peering" ] ~doc:"Same-tier peering probability.")
  in
  let ases =
    Arg.(
      value & opt int 0
      & info [ "ases" ]
          ~doc:
            "Generate a power-law internet of this many ASes (tier \
             histogram and address plan included) instead of the \
             $(b,--tiers) hierarchy.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"DRBG seed.") in
  Cmd.v
    (Cmd.info "topology" ~doc:"Generate a topology and run BGP to convergence")
    Term.(const run_topology $ tiers $ peering $ ases $ seed $ stats_arg)

let adversary_cmd =
  let strategy =
    Arg.(
      value & opt string "all"
      & info [ "strategy" ]
          ~doc:
            "Adversary strategy, or $(b,all) for the whole zoo.  Canonical \
             names: honest, coalition-false-bits, cross-shard-equivocate, \
             adaptive-low-value, timing-probe; any single behaviour name \
             (e.g. equivocate) selects a sweep of it.")
  in
  let coalition =
    Arg.(
      value & opt (some int) None
      & info [ "coalition" ]
          ~doc:"Override the coalition size of coalition strategies.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ]
          ~doc:
            "Master DRBG seed; the topology, keys, per-vertex plans and \
             every printed matrix line are a deterministic function of it.")
  in
  let ases =
    Arg.(
      value & opt int 16
      & info [ "ases" ] ~doc:"Power-law internet size (ASes).")
  in
  let epochs =
    Arg.(value & opt int 2 & info [ "epochs" ] ~doc:"Verification epochs.")
  in
  let jobs =
    Arg.(value & opt int 1 & info [ "jobs" ] ~doc:"Worker domains.")
  in
  let bits =
    Arg.(value & opt int 512 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  Cmd.v
    (Cmd.info "adversary"
       ~doc:
         "Run the adversary strategy zoo and print the E14 detection/leakage \
          matrix")
    Term.(
      const run_adversary $ strategy $ coalition $ seed $ ases $ epochs $ jobs
      $ bits $ stats_arg)

(* ---- query ---------------------------------------------------------------- *)

(* Indexed audit queries over a checkpointed engine run's evidence plane.
   Exit codes follow the house contract: 0 rows returned (possibly none),
   2 query parse error, 3 missing/unreadable store. *)
let run_query qtext store_dir viewer json explain stats =
  with_stats stats (fun () ->
      match Pvr_query.Lang.parse qtext with
      | Error e ->
          Printf.eprintf "pvr query: syntax error\n%s\n%!"
            (Pvr_query.Lang.render_error ~query:qtext e);
          2
      | Ok q -> (
          match Pvr_query.Evidence_index.build ~dir:store_dir () with
          | Error e ->
              Printf.eprintf "pvr query: %s\n%!" e;
              3
          | Ok idx ->
              let viewer = asn viewer in
              let res = Pvr_query.Exec.run idx ~viewer q in
              if explain then
                Printf.eprintf "%s\n%!"
                  (Pvr_query.Exec.explain res.Pvr_query.Exec.qr_plan);
              if json then
                print_endline (Pvr_query.Exec.render_json ~query:q ~viewer res)
              else print_string (Pvr_query.Exec.render_text ~viewer res);
              0))

let query_cmd =
  let qtext =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"QUERY"
          ~doc:
            "Query text, e.g. 'violations where prefix in 10.0.0.0/8 and \
             epoch > 40 order by epoch limit 20'.")
  in
  let store =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Checkpoint store of an engine run ($(b,pvr engine --checkpoint \
             DIR)) to query.")
  in
  let viewer =
    Arg.(
      value & opt int 0
      & info [ "viewer" ] ~docv:"ASN"
          ~doc:
            "Execute as this viewer AS: rows the α map does not authorize \
             it to see are withheld (and accounted as refusals).  0 \
             (default) is the court pseudo-viewer, which sees everything.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Machine-readable single-line JSON on stdout instead of a \
             table; byte-identical for identical results (the crash-smoke \
             diffs live vs recovered output).")
  in
  let explain =
    Arg.(
      value & flag
      & info [ "explain" ]
          ~doc:
            "Print the chosen access path and every considered \
             alternative with costs, on stderr.")
  in
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Run an indexed audit query over the evidence plane of a \
          checkpointed engine run")
    Term.(
      const run_query $ qtext $ store $ viewer $ json $ explain $ stats_arg)

let primitives_cmd =
  let bits =
    Arg.(value & opt int 1024 & info [ "bits" ] ~doc:"RSA modulus size.")
  in
  Cmd.v
    (Cmd.info "primitives" ~doc:"Time the §3.8 crypto primitives")
    Term.(const run_primitives $ bits $ stats_arg)

(* ---- serve / drive ----------------------------------------------------------- *)

(* `pvr serve` is the RVaaS deployment shape: a long-lived daemon
   multiplexing concurrent prover sessions onto the engine's worker-domain
   pool, streaming per-epoch verdicts over length-framed sockets with
   bounded-queue backpressure.  `pvr drive` is its batch client — N
   concurrent seeded sessions, one digest line each — used by the
   serve-smoke CI job and the E17 bench. *)

let parse_listen socket tcp =
  match (socket, tcp) with
  | Some path, None -> Ok (Pvr_serve.Server.Unix_sock path)
  | None, Some spec -> (
      match String.rindex_opt spec ':' with
      | Some i -> (
          let host = String.sub spec 0 i in
          let host = if host = "" then "127.0.0.1" else host in
          match int_of_string_opt (String.sub spec (i + 1) (String.length spec - i - 1)) with
          | Some port -> Ok (Pvr_serve.Server.Tcp (host, port))
          | None -> Error "invalid --tcp PORT")
      | None -> (
          match int_of_string_opt spec with
          | Some port -> Ok (Pvr_serve.Server.Tcp ("127.0.0.1", port))
          | None -> Error "invalid --tcp spec (HOST:PORT or PORT)"))
  | None, None -> Error "one of --socket PATH or --tcp HOST:PORT is required"
  | Some _, Some _ -> Error "--socket and --tcp are mutually exclusive"

let run_serve socket tcp workers queue_cap store stats =
  with_stats stats (fun () ->
      match parse_listen socket tcp with
      | Error msg ->
          Printf.eprintf "pvr serve: %s\n%!" msg;
          2
      | Ok listen ->
          let cfg =
            {
              Pvr_serve.Server.listen;
              workers;
              queue_cap;
              store_dir = store;
              quiet = false;
            }
          in
          let srv = Pvr_serve.Server.start cfg in
          let drain _ = Pvr_serve.Server.initiate_shutdown srv in
          Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
          Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
          Pvr_serve.Server.wait srv;
          0)

let serve_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix domain socket at $(docv).")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Listen on TCP instead.")
  in
  let workers =
    Arg.(
      value & opt int 2
      & info [ "workers" ]
          ~doc:"Worker domains executing session verification (capped at 16).")
  in
  let queue_cap =
    Arg.(
      value & opt int 8
      & info [ "queue-cap" ]
          ~doc:
            "Bounded admission queue: at most this many accepted work \
             items may wait for a worker; further requests are refused \
             with Busy immediately (explicit backpressure, never \
             unbounded buffering).")
  in
  let store =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Evidence store served to query requests (the pvr query \
             language over the wire).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived verification daemon: multiplex concurrent prover \
          sessions onto the engine's worker-domain pool, streaming \
          per-epoch verdicts over length-framed sockets.  SIGTERM/SIGINT \
          drain in-flight sessions cleanly before exit.")
    Term.(const run_serve $ socket $ tcp $ workers $ queue_cap $ store $ stats_arg)

let run_drive socket tcp sessions p stats =
  with_stats stats (fun () ->
      match parse_listen socket tcp with
      | Error msg ->
          Printf.eprintf "pvr drive: %s\n%!" msg;
          2
      | Ok listen ->
          let results = Array.make sessions (Error "not run") in
          let drive_one i =
            let params = { p with p_seed = p.p_seed + i } in
            match Pvr_serve.Client.connect listen with
            | exception Unix.Unix_error (e, _, _) ->
                results.(i) <- Error ("connect: " ^ Unix.error_message e)
            | cl ->
                Fun.protect
                  ~finally:(fun () -> Pvr_serve.Client.close cl)
                  (fun () ->
                    (* Busy is backpressure, not failure: retry with a
                       small delay until the daemon admits the run. *)
                    let rec admitted tries =
                      match Pvr_serve.Client.open_session cl params with
                      | Ok id -> Ok id
                      | Error "busy" when tries < 400 ->
                          Unix.sleepf 0.05;
                          admitted (tries + 1)
                      | Error e -> Error e
                    in
                    let rec run_retry id tries =
                      match Pvr_serve.Client.run_epochs cl id with
                      | Error "busy" when tries < 400 ->
                          Unix.sleepf 0.05;
                          run_retry id (tries + 1)
                      | r -> r
                    in
                    results.(i) <-
                      (match admitted 0 with
                      | Error e -> Error e
                      | Ok id -> run_retry id 0))
          in
          let threads = Array.init sessions (fun i -> Thread.create drive_one i) in
          Array.iter Thread.join threads;
          let failed = ref 0 and convicted = ref 0 in
          Array.iteri
            (fun i r ->
              match r with
              | Ok (digest, conv) ->
                  convicted := !convicted + conv;
                  Printf.printf "session %d seed=%d digest=%s convicted=%d\n" i
                    (p.p_seed + i) digest conv
              | Error e ->
                  incr failed;
                  Printf.printf "session %d seed=%d ERROR %s\n" i (p.p_seed + i) e)
            results;
          if !failed > 0 then 3 else if !convicted > 0 then 1 else 0)

let drive_cmd =
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH" ~doc:"Daemon Unix socket to connect to.")
  in
  let tcp =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Daemon TCP address to connect to.")
  in
  let sessions =
    Arg.(
      value & opt int 3
      & info [ "sessions" ]
          ~doc:
            "Concurrent sessions to drive; session $(i,i) runs the \
             engine workload with seed $(b,--seed)+$(i,i).")
  in
  Cmd.v
    (Cmd.info "drive"
       ~doc:
         "Drive N concurrent seeded sessions against a running pvr serve \
          daemon and print one digest line per session — the digests \
          match batch `pvr engine` runs of the same seeds exactly.")
    Term.(const run_drive $ socket $ tcp $ sessions $ eparams_term $ stats_arg)

let () =
  let info =
    Cmd.info "pvr" ~version:"1.0.0"
      ~doc:"Private and verifiable interdomain routing (HotNets-X 2011)"
  in
  let group =
    Cmd.group info
      [
        round_cmd;
        soak_cmd;
        engine_cmd;
        crashsoak_cmd;
        adversary_cmd;
        query_cmd;
        serve_cmd;
        drive_cmd;
        check_cmd;
        topology_cmd;
        primitives_cmd;
      ]
  in
  (* Uniform exit codes: 0 success, 1 property violation, 2 usage error,
     3 unrecoverable store, 125 internal error. *)
  exit
    (match Cmd.eval_value group with
    | Ok (`Ok code) -> code
    | Ok (`Version | `Help) -> 0
    | Error `Parse | Error `Term -> 2
    | Error `Exn -> 125)
