(* Policy compiler (§4 "language support"): parse a router-configuration
   style policy, compile each promise to a route-flow graph, statically
   check it, and report which promises are verifiable under which access
   control.

     dune exec examples/policy_compiler.exe *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg

let asn = G.Asn.of_int

let source =
  {|
# A mid-size ISP's promises to three different neighbors.
policy for AS3356 {
  # To the paying customer: full shortest-path transit.
  promise to AS100 = shortest;

  # To the partial-transit partner: prefer the European peers
  # unless the backbone has something strictly shorter.
  promise to AS200 = prefer AS5511 AS6762 unless-shorter AS1299;

  # To the backup peer: merely existence.
  promise to AS300 = export-if-any AS5511 AS6762 AS1299;

  import from AS1299 {
    if prefix-in 0.0.0.0/0 and pathlen-le 12 then set-local-pref 80 accept;
  }
  import from AS5511 {
    if community 3356:70 then set-local-pref 140 accept;
    accept;
  }
  export to AS100 {
    if path-has AS666 then reject;
    then prepend 1 accept;
  }
}
|}

let () =
  let config =
    match R.Compiler.parse source with
    | Ok c -> c
    | Error e ->
        Format.eprintf "parse error: %a@." R.Compiler.pp_error e;
        exit 1
  in
  Format.printf "Parsed configuration for %a:@." G.Asn.pp config.R.Compiler.owner;
  Format.printf "%s@." (R.Compiler.render config);

  let neighbors = [ asn 1299; asn 5511; asn 6762 ] in
  let compiled = R.Compiler.compile config ~neighbors in
  List.iter
    (fun (beneficiary, promise, rfg) ->
      Format.printf "--- promise to %a: %s@." G.Asn.pp beneficiary
        (R.Promise.describe promise);
      Format.printf "%a" R.Rfg.pp rfg;
      let issues =
        R.Static_check.implements rfg ~promise ~beneficiary ~neighbors
      in
      if issues = [] then Format.printf "static check: OK@."
      else
        List.iter
          (fun i -> Format.printf "static check: %a@." R.Static_check.pp_issue i)
          issues;
      (* Verifiability under the promise's minimal α, and under a broken α
         that hides the operator. *)
      let alpha =
        P.Access_control.for_promise promise ~beneficiary ~neighbors
      in
      let ok =
        R.Static_check.verifiable_under rfg ~promise ~beneficiary ~neighbors
          ~visible:(fun ~viewer v ->
            P.Access_control.permits_vertex alpha ~viewer v)
        = []
      in
      Format.printf "verifiable under minimal alpha: %b@." ok;
      let broken =
        R.Static_check.verifiable_under rfg ~promise ~beneficiary ~neighbors
          ~visible:(fun ~viewer:_ v -> not (String.length v > 2 && String.sub v 0 3 = "op:"))
      in
      Format.printf "verifiable when operators are hidden: %b (issues: %d)@.@."
        (broken = []) (List.length broken))
    compiled
