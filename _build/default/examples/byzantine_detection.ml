(* Byzantine detection: the §2.3 properties demonstrated across every
   misbehaviour this library can inject (the E8 matrix, narrated).

     dune exec examples/byzantine_detection.exe *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int

let detector_name = function
  | P.Adversary.Beneficiary -> "B"
  | P.Adversary.Provider n -> G.Asn.to_string n
  | P.Adversary.Gossip -> "gossip"

let () =
  let rng = C.Drbg.of_int_seed 99 in
  let a = asn 1 and b = asn 100 in
  let providers = List.init 3 (fun i -> asn (10 + i)) in
  let keyring = P.Keyring.create ~bits:1024 rng (a :: b :: providers) in
  let prefix = G.Prefix.of_string "192.0.2.0/24" in
  let route n len =
    let path = List.init len (fun j -> if j = 0 then n else asn (8000 + j)) in
    let base = G.Route.originate ~asn:n prefix in
    { base with G.Route.as_path = path; next_hop = n }
  in
  let routes = List.mapi (fun i n -> (n, route n (i + 2))) providers in

  print_endline "Scenario: A promised B the shortest route from {N1,N2,N3}.";
  print_endline "Provider route lengths: 2, 3, 4.\n";

  List.iter
    (fun beh ->
      Printf.printf "--- A behaves: %s ---\n" (P.Adversary.to_string beh);
      let r =
        P.Runner.min_round beh rng keyring ~prover:a ~beneficiary:b ~epoch:1
          ~prefix ~routes
      in
      if r.P.Runner.raised = [] then
        print_endline "  all checks passed; nobody accuses A."
      else
        List.iter
          (fun (who, e, v) ->
            Printf.printf "  detected by %-6s: %s\n" (detector_name who)
              (P.Evidence.describe e);
            Printf.printf "  judge verdict   : %s\n"
              (P.Judge.verdict_to_string v))
          r.P.Runner.judged;
      print_newline ())
    P.Adversary.all;

  (* Accuracy in the other direction: a *false* accusation against an honest
     A must fail — A disproves it by answering the judge's challenge. *)
  print_endline "--- B falsely accuses an honest A of suppressing the export ---";
  let announces =
    List.map
      (fun (n, r) ->
        P.Runner.announce_of_route keyring ~provider:n ~prover:a ~epoch:2 r)
      routes
  in
  let honest =
    P.Adversary.run_min P.Adversary.Honest rng keyring ~prover:a
      ~beneficiary:b ~epoch:2 ~prefix ~inputs:announces
  in
  let false_claim =
    P.Evidence.Missing_export_claim
      {
        commit = honest.P.Adversary.commit_for b;
        openings = honest.P.Adversary.beneficiary_disclosure.bd_openings;
        claimant = b;
      }
  in
  Printf.printf "  judge verdict: %s (A produced the export on challenge)\n"
    (P.Judge.verdict_to_string
       (P.Judge.evaluate keyring ~respond:honest.P.Adversary.respond
          false_claim))
