(* Partial transit (§1): "network A ... might enter into a 'partial transit'
   relationship with network B and promise to deliver routes from, e.g.,
   European peers in preference to other routes."

   We model that with the Figure-2 promise: A exports to B some route via
   its ordinary providers N2..N4 *unless* the preferred peer N1 has a
   strictly shorter route.  The whole policy is written in the §4 policy
   language, compiled to a route-flow graph, statically checked against the
   promise, and then verified at run time with the generalized (§3.5-3.7)
   Merkle-tree protocol — driven by routes taken from a real (simulated)
   BGP convergence on a Gao-Rexford hierarchy.

     dune exec examples/partial_transit.exe *)

module P = Pvr
module G = Pvr_bgp
module R = Pvr_rfg
module C = Pvr_crypto

let asn = G.Asn.of_int

let policy_src =
  {|
# AS1's configuration: partial transit towards AS100.
policy for AS1 {
  promise to AS100 = prefer AS11 AS12 AS13 unless-shorter AS10;

  import from AS10 {
    if prefix-in 0.0.0.0/0 then set-local-pref 120 accept;
  }
  export to AS100 {
    if path-has AS666 then reject;
    accept;
  }
}
|}

let () =
  let rng = C.Drbg.of_int_seed 7 in

  (* 1. Parse and compile the configuration. *)
  let config =
    match R.Compiler.parse policy_src with
    | Ok c -> c
    | Error e ->
        Format.eprintf "config error: %a@." R.Compiler.pp_error e;
        exit 1
  in
  let neighbors = List.init 4 (fun i -> asn (10 + i)) in
  let compiled = R.Compiler.compile config ~neighbors in
  let beneficiary, promise, rfg =
    match compiled with [ x ] -> x | _ -> failwith "expected one promise"
  in
  Format.printf "Compiled promise: %s@." (R.Promise.describe promise);
  Format.printf "Route-flow graph:@.%a@." R.Rfg.pp rfg;

  (* 2. Static check (§2.2): does the graph implement the promise, and is it
     verifiable under the minimal access-control policy? *)
  let issues =
    R.Static_check.implements rfg ~promise ~beneficiary ~neighbors
  in
  Printf.printf "Static check: %d issues\n"
    (List.length issues);
  let alpha =
    P.Access_control.for_promise promise ~beneficiary ~neighbors
  in
  let access_issues =
    R.Static_check.verifiable_under rfg ~promise ~beneficiary ~neighbors
      ~visible:(fun ~viewer v -> P.Access_control.permits_vertex alpha ~viewer v)
  in
  Printf.printf "Minimum-access check (§4): %d issues\n"
    (List.length access_issues);

  (* 3. Produce realistic input routes: run BGP to convergence on a small
     provider hierarchy and take A's Adj-RIB-In. *)
  let topo = ref G.Topology.empty in
  let a = asn 1 in
  List.iter
    (fun n -> topo := G.Topology.add_link !topo ~a ~b:n ~rel_ab:G.Relationship.Provider)
    neighbors;
  (* Each provider reaches a common origin AS over paths of different
     lengths, built as provider chains hanging off each N_i. *)
  let origin = asn 900 in
  List.iteri
    (fun i n ->
      let chain =
        List.init i (fun j -> asn (100 * (i + 1) + j))
      in
      let rec wire last = function
        | [] -> G.Topology.add_link !topo ~a:last ~b:origin ~rel_ab:G.Relationship.Customer
        | x :: rest ->
            topo := G.Topology.add_link !topo ~a:last ~b:x ~rel_ab:G.Relationship.Customer;
            wire x rest
      in
      topo := wire n chain)
    neighbors;
  let sim = G.Simulator.create !topo in
  let prefix = G.Prefix.of_string "198.51.100.0/24" in
  G.Simulator.originate sim ~asn:origin prefix;
  let msgs = G.Simulator.run sim in
  Printf.printf "\nBGP converged after %d messages.\n" msgs;
  let inputs =
    List.filter_map
      (fun n ->
        Option.map (fun r -> (n, r)) (G.Rib.get_in (G.Simulator.rib sim a) ~neighbor:n prefix))
      neighbors
  in
  List.iter
    (fun ((n : G.Asn.t), r) ->
      Format.printf "  A's Adj-RIB-In from %a: %a@." G.Asn.pp n G.Route.pp r)
    inputs;

  (* 4. Run the generalized PVR round on those routes. *)
  let keyring =
    P.Keyring.create ~bits:1024 (C.Drbg.split rng "keys")
      (a :: beneficiary :: neighbors)
  in
  let report =
    P.Runner.graph_round rng keyring ~prover:a ~beneficiary ~epoch:1 ~prefix
      ~promise ~routes:inputs
  in
  Printf.printf
    "\nPVR graph round: detected=%b (honest A), %d messages, commitment %d bytes\n"
    report.P.Runner.detected report.P.Runner.messages
    report.P.Runner.commit_bytes;
  print_endline "The promise held, and no neighbor learned another's routes."
