(* Promise 4 (§2): "The route you get is no longer than what I tell anybody
   else."  The paper lists this promise without a mechanism; this library
   extends the §3.3 threshold-bit technique across beneficiaries
   (Pvr.Proto_no_shorter).  Here AS1 serves three customers and secretly
   plays favourites — the disadvantaged customers catch it with
   self-contained evidence.

     dune exec examples/promise_four.exe *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int

let () =
  let rng = C.Drbg.of_int_seed 44 in
  let a = asn 1 in
  let customers = [ asn 100; asn 200; asn 300 ] in
  let provider = asn 10 in
  let keyring = P.Keyring.create ~bits:1024 rng (a :: provider :: customers) in
  let prefix = G.Prefix.of_string "203.0.113.0/24" in

  let input len =
    let path = List.init len (fun j -> if j = 0 then provider else asn (8000 + j)) in
    let base = G.Route.originate ~asn:provider prefix in
    let route = { base with G.Route.as_path = path; next_hop = provider } in
    P.Runner.announce_of_route keyring ~provider ~prover:a ~epoch:1 route
  in

  let run description exports =
    Printf.printf "--- %s ---\n" description;
    let out =
      P.Proto_no_shorter.prove ~max_path_len:8 rng keyring ~prover:a
        ~beneficiaries:customers ~epoch:1 ~prefix ~exports
    in
    List.iter
      (fun m ->
        let evs =
          P.Proto_no_shorter.check_beneficiary ~max_path_len:8 keyring ~me:m
            ~beneficiaries:customers ~commit:out.P.Proto_no_shorter.commit
            ~disclosure:(List.assoc m out.P.Proto_no_shorter.per_beneficiary)
        in
        if evs = [] then
          Printf.printf "  %s: satisfied\n" (G.Asn.to_string m)
        else
          List.iter
            (fun e ->
              Printf.printf "  %s: VIOLATION - %s [judge: %s]\n"
                (G.Asn.to_string m) (P.Evidence.describe e)
                (P.Judge.verdict_to_string
                   (P.Judge.evaluate_offline keyring e)))
            evs)
      customers;
    print_newline ()
  in

  (* Fair service: everyone gets a route of length 3. *)
  run "A treats all three customers equally (length 3)"
    (List.map (fun m -> (m, input 3)) customers);

  (* Favouritism: AS200 gets a length-2 route, the others length 4. *)
  run "A gives AS200 a strictly shorter route"
    [ (asn 100, input 4); (asn 200, input 2); (asn 300, input 4) ];

  print_endline
    "Each bit a customer sees about another's export is implied by the\n\
     promise itself, so nothing about the actual routes leaks."
