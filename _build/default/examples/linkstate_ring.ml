(* The §3.2 link-state remark: "Suppose we apply PVR to a link-state
   protocol that only exports whether a path exists.  Then the N_i can use a
   ring signature scheme ... to sign the statement 'A route exists'.  Thus,
   B could tell that some N_i had provided a route, but it could not tell
   which one."

     dune exec examples/linkstate_ring.exe *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int

let () =
  let rng = C.Drbg.of_int_seed 123 in
  let providers = List.init 5 (fun i -> asn (10 + i)) in
  let keyring = P.Keyring.create ~bits:1024 rng providers in
  let prefix = G.Prefix.of_string "10.10.0.0/16" in

  Printf.printf "Ring: {%s}\n"
    (String.concat ", " (List.map G.Asn.to_string providers));

  (* One (secret) member of the ring actually has a route and signs the
     existence statement anonymously. *)
  let secret_signer = List.nth providers 3 in
  let signature =
    P.Proto_exists.ring_announce rng keyring ~ring:providers
      ~signer:secret_signer ~epoch:1 ~prefix
  in
  Printf.printf "Statement: %S\n"
    (P.Proto_exists.ring_statement ~epoch:1 ~prefix);
  Printf.printf "Signature size: %d bytes (ring of %d)\n"
    (String.length (C.Ring_signature.encode signature))
    (C.Ring_signature.ring_size signature);

  (* B can check that SOME ring member signed... *)
  Printf.printf "B verifies 'some N_i has a route': %b\n"
    (P.Proto_exists.ring_check keyring ~ring:providers ~epoch:1 ~prefix
       signature);

  (* ...but the signature is symmetric in the ring members: there is no
     verification keyed to an individual signer, and the transcript is
     identical in distribution whoever signed.  We illustrate by showing the
     same check passes regardless of which member we *guess* signed (there
     is simply no per-member check to run), and that tampering breaks it. *)
  Printf.printf "B verifies under wrong epoch (must fail): %b\n"
    (P.Proto_exists.ring_check keyring ~ring:providers ~epoch:9 ~prefix
       signature);

  (* Every ring member could have produced an indistinguishable signature. *)
  print_endline "Signatures by each possible member (all verify equally):";
  List.iter
    (fun signer ->
      let s =
        P.Proto_exists.ring_announce rng keyring ~ring:providers ~signer
          ~epoch:1 ~prefix
      in
      Printf.printf "  signer %s -> verifies %b\n" (G.Asn.to_string signer)
        (P.Proto_exists.ring_check keyring ~ring:providers ~epoch:1 ~prefix s))
    providers;
  print_endline "B learns that a route exists, and nothing about whose it is."
