(* Quickstart: the paper's Figure-1 scenario end to end.

   Network A is connected to providers N1..N4 and a beneficiary B.  A has
   promised B to export the shortest route it receives from the N_i.  We run
   one §3.3 verification round with an honest A, then with an A that breaks
   the promise, and show B obtaining judge-proof evidence.

     dune exec examples/quickstart.exe *)

module P = Pvr
module G = Pvr_bgp
module C = Pvr_crypto

let asn = G.Asn.of_int

let () =
  let rng = C.Drbg.of_int_seed 42 in
  let a = asn 1 and b = asn 100 in
  let providers = List.init 4 (fun i -> asn (10 + i)) in

  (* 1. Every participant has a signing key (S-BGP-style PKI assumption). *)
  Printf.printf "Generating keys for A, B and %d providers...\n%!"
    (List.length providers);
  let keyring = P.Keyring.create ~bits:1024 rng (a :: b :: providers) in

  (* 2. The providers announce routes to A: N1 the longest, N4 the shortest. *)
  let prefix = G.Prefix.of_string "203.0.113.0/24" in
  let route n len =
    let path = List.init len (fun j -> if j = 0 then n else asn (8000 + j)) in
    let base = G.Route.originate ~asn:n prefix in
    { base with G.Route.as_path = path; next_hop = n }
  in
  let routes = List.mapi (fun i n -> (n, route n (5 - i))) providers in
  List.iter
    (fun ((n : G.Asn.t), r) ->
      Format.printf "  %a announces %a (length %d)@." G.Asn.pp n G.Route.pp r
        (G.Route.path_length r))
    routes;

  (* 3. One honest verification round: A commits to the threshold bits,
     everyone gossips, discloses, checks. *)
  let round behaviour =
    P.Runner.min_round behaviour rng keyring ~prover:a ~beneficiary:b ~epoch:1
      ~prefix ~routes
  in
  let honest = round P.Adversary.Honest in
  Printf.printf "\nHonest A:   detected=%b  (no party saw anything wrong)\n"
    honest.P.Runner.detected;

  (* 4. Now A cheats: it exports a longer route than it promised. *)
  let cheating = round P.Adversary.Export_nonminimal in
  Printf.printf "Cheating A: detected=%b  convicted=%b\n"
    cheating.P.Runner.detected cheating.P.Runner.convicted;
  List.iter
    (fun (_, e, v) ->
      Printf.printf "  evidence: %s -> judge says %s\n" (P.Evidence.describe e)
        (P.Judge.verdict_to_string v))
    cheating.P.Runner.judged;

  (* 5. Confidentiality: B learned the bits b_1..b_k, but every one of them
     is derivable from the exported route + the promise — zero excess. *)
  let exported = Some (route (List.nth providers 3) 2) in
  let baseline = P.Leakage.plain_bgp_beneficiary ~exported in
  let observed =
    P.Leakage.pvr_min_beneficiary ~k:8
      ~openings:(List.init 8 (fun i -> (i + 1, 2 <= i + 1)))
      ~exported
  in
  Printf.printf "\nConfidentiality: B's excess knowledge beyond plain BGP = %d facts\n"
    (P.Leakage.excess_count ~baseline ~observed);
  print_endline "Done.  See examples/partial_transit.ml for a realistic policy."
