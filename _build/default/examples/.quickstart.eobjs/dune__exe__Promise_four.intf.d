examples/promise_four.mli:
