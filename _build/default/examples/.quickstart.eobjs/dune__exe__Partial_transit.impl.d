examples/partial_transit.ml: Format List Option Printf Pvr Pvr_bgp Pvr_crypto Pvr_rfg
