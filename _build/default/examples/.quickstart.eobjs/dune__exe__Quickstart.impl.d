examples/quickstart.ml: Format List Printf Pvr Pvr_bgp Pvr_crypto
