examples/quickstart.mli:
