examples/partial_transit.mli:
