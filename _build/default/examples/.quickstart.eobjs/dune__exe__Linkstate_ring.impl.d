examples/linkstate_ring.ml: List Printf Pvr Pvr_bgp Pvr_crypto String
