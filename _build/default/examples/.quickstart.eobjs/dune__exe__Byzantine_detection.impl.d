examples/byzantine_detection.ml: List Printf Pvr Pvr_bgp Pvr_crypto
