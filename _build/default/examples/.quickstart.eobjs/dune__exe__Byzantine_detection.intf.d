examples/byzantine_detection.mli:
