examples/policy_compiler.ml: Format List Pvr Pvr_bgp Pvr_rfg String
