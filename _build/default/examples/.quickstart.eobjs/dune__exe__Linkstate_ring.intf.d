examples/linkstate_ring.mli:
