examples/promise_four.ml: List Printf Pvr Pvr_bgp Pvr_crypto
