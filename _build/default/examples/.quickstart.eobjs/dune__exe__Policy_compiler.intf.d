examples/policy_compiler.mli:
