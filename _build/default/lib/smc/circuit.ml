type wire = int

type gate = And of wire * wire | Xor of wire * wire | Not of wire

type t = { n_inputs : int; gates : gate array; outputs : wire list }

let eval t inputs =
  if Array.length inputs <> t.n_inputs then
    invalid_arg "Circuit.eval: wrong input count";
  let values = Array.make (t.n_inputs + Array.length t.gates) false in
  Array.blit inputs 0 values 0 t.n_inputs;
  Array.iteri
    (fun i g ->
      values.(t.n_inputs + i) <-
        (match g with
        | And (a, b) -> values.(a) && values.(b)
        | Xor (a, b) -> values.(a) <> values.(b)
        | Not a -> not values.(a)))
    t.gates;
  List.map (fun w -> values.(w)) t.outputs

let and_count t =
  Array.fold_left
    (fun acc g -> match g with And _ -> acc + 1 | _ -> acc)
    0 t.gates

let and_depth t =
  (* Depth counting only AND gates (XOR/NOT are local in GMW). *)
  let depth = Array.make (t.n_inputs + Array.length t.gates) 0 in
  Array.iteri
    (fun i g ->
      let d =
        match g with
        | And (a, b) -> 1 + max depth.(a) depth.(b)
        | Xor (a, b) -> max depth.(a) depth.(b)
        | Not a -> depth.(a)
      in
      depth.(t.n_inputs + i) <- d)
    t.gates;
  List.fold_left (fun acc w -> max acc depth.(w)) 0 t.outputs

let size t = Array.length t.gates

module Builder = struct
  type b = { n_inputs : int; mutable gates : gate list; mutable next : int }

  let create ~n_inputs = { n_inputs; gates = []; next = n_inputs }

  let input b i =
    if i < 0 || i >= b.n_inputs then invalid_arg "Builder.input: out of range";
    i

  let emit b g =
    b.gates <- g :: b.gates;
    let w = b.next in
    b.next <- b.next + 1;
    w

  let band b x y = emit b (And (x, y))
  let bxor b x y = emit b (Xor (x, y))
  let bnot b x = emit b (Not x)

  (* x OR y = NOT (NOT x AND NOT y) *)
  let bor b x y = bnot b (band b (bnot b x) (bnot b y))

  let constant b v =
    let zero = bxor b 0 0 in
    if v then bnot b zero else zero

  let finish b ~outputs =
    {
      n_inputs = b.n_inputs;
      gates = Array.of_list (List.rev b.gates);
      outputs;
    }
end

open Builder

(* lt recurrence LSB -> MSB: lt' = (~a & b) XOR (~(a XOR b) & lt). *)
let less_than_wires b a_bits b_bits =
  List.fold_left2
    (fun lt ai bi ->
      let na = bnot b ai in
      let na_and_b = band b na bi in
      let eq = bnot b (bxor b ai bi) in
      let keep = band b eq lt in
      (* na_and_b and keep are mutually exclusive, so XOR = OR. *)
      bxor b na_and_b keep)
    (constant b false) a_bits b_bits

let less_than ~bits =
  let b = create ~n_inputs:(2 * bits) in
  let a_bits = List.init bits (input b) in
  let b_bits = List.init bits (fun i -> input b (bits + i)) in
  let lt = less_than_wires b a_bits b_bits in
  finish b ~outputs:[ lt ]

let mux b s x y =
  (* s = 1 -> x, else y. *)
  let d = bxor b x y in
  bxor b y (band b s d)

let minimum ~bits ~k =
  if k < 1 then invalid_arg "Circuit.minimum: k must be positive";
  let b = create ~n_inputs:(bits * k) in
  let value i = List.init bits (fun j -> input b ((i * bits) + j)) in
  let min2 x y =
    let lt = less_than_wires b x y in
    List.map2 (fun xi yi -> mux b lt xi yi) x y
  in
  (* Balanced tournament tree. *)
  let rec tournament = function
    | [] -> assert false
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | x :: y :: rest -> min2 x y :: pair rest
          | [ x ] -> [ x ]
          | [] -> []
        in
        tournament (pair vs)
  in
  let result = tournament (List.init k value) in
  finish b ~outputs:result

let majority_vote ~voters =
  if voters < 1 then invalid_arg "Circuit.majority_vote: need voters";
  let b = create ~n_inputs:voters in
  let width =
    let rec go w = if 1 lsl w > voters then w else go (w + 1) in
    go 1
  in
  let zero = constant b false in
  (* Ripple-add each ballot into an accumulator. *)
  let add_bit acc bit =
    let rec go acc carry =
      match acc with
      | [] -> []
      | a :: rest ->
          let sum = bxor b a carry in
          let carry' = band b a carry in
          sum :: go rest carry'
    in
    go acc bit
  in
  let sum =
    List.fold_left
      (fun acc i -> add_bit acc (input b i))
      (List.init width (fun _ -> zero))
      (List.init voters Fun.id)
  in
  (* majority: sum > voters/2  <=>  voters/2 < sum *)
  let threshold = voters / 2 in
  let t_bits =
    List.init width (fun i -> constant b ((threshold lsr i) land 1 = 1))
  in
  let gt = less_than_wires b t_bits sum in
  finish b ~outputs:[ gt ]
