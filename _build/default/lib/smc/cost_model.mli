(** Wall-clock cost models for the §3.1 strawmen.

    The paper's data point: "even with only five players, state-of-the-art
    SMC systems take about 15 seconds of computation time for a simple task
    like voting [FairplayMP, CCS 2008]".  We anchor a per-AND-gate,
    per-party-pair cost to that observation and extrapolate to the circuits
    PVR would otherwise have to evaluate per BGP update (experiment E6).
    The model is deliberately simple — the comparison the paper makes is
    about orders of magnitude and scaling shape, not precise timings.

    Cost(SMC)  = and_gates · parties² · c_gate  +  rounds · c_latency
    Cost(ZKP)  = gates · c_prove  (prover) — generic ZKP compiles the same
    circuit and pays per gate; verification is cheaper but the prover runs
    per update.

    The constants are derived in [calibrate]: with the 5-voter majority
    circuit (A AND gates, R rounds), c_gate solves
    A · 25 · c_gate + R · c_latency = 15 s, with c_latency fixed at 2 ms
    (2011 LAN round-trip, conservative). *)

type t = {
  c_gate_s : float;     (** seconds per AND gate per party-pair *)
  c_latency_s : float;  (** seconds per communication round *)
  c_zkp_gate_s : float; (** prover seconds per gate *)
}

val default : t
(** Calibrated against the FairplayMP anchor at module load. *)

val calibrate : anchor_seconds:float -> voters:int -> t

val smc_seconds : t -> and_gates:int -> rounds:int -> parties:int -> float

val zkp_seconds : t -> gates:int -> float

val smc_seconds_for : t -> Circuit.t -> parties:int -> float

val anchor_check : t -> float
(** The model's prediction for the 5-voter anchor task (≈ 15 s). *)
