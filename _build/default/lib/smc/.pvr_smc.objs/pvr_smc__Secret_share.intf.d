lib/smc/secret_share.mli: Pvr_crypto
