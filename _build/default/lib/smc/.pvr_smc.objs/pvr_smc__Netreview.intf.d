lib/smc/netreview.mli: Pvr_bgp
