lib/smc/cost_model.mli: Circuit
