lib/smc/secret_share.ml: Array Pvr_crypto
