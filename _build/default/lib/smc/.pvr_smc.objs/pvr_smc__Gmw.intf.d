lib/smc/gmw.mli: Circuit Pvr_crypto
