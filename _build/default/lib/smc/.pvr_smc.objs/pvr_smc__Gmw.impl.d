lib/smc/gmw.ml: Array Circuit Int64 List Pvr_crypto Secret_share Unix
