lib/smc/netreview.ml: List Pvr_bgp String
