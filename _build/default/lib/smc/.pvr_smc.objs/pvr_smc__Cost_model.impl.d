lib/smc/cost_model.ml: Circuit
