lib/smc/circuit.ml: Array Fun List
