lib/smc/circuit.mli:
