(** Boolean circuits — the computation model of the §3.1 SMC/ZKP strawmen.

    The paper rejects generic secure multiparty computation because
    "state-of-the-art SMC systems take about 15 seconds of computation time
    for a simple task like voting" and every BGP update would need one
    evaluation.  To reproduce that comparison (experiment E6) we need the
    circuits those systems would evaluate: comparators, minimum-selection
    trees, and the voting benchmark used for calibration. *)

type wire = int

type gate =
  | And of wire * wire
  | Xor of wire * wire
  | Not of wire
  (* Or / Eq are lowered onto these three. *)

type t = {
  n_inputs : int;
  gates : gate array;       (** wire i = n_inputs + index in this array *)
  outputs : wire list;
}

val eval : t -> bool array -> bool list
(** Plain (insecure) evaluation; the SMC result must match it. *)

val and_count : t -> int
(** Number of AND gates — the cost driver in GMW (XOR is free). *)

val and_depth : t -> int
(** AND-depth = number of communication rounds in GMW. *)

val size : t -> int

(** {2 Builders} *)

module Builder : sig
  type b

  val create : n_inputs:int -> b
  val input : b -> int -> wire
  val band : b -> wire -> wire -> wire
  val bxor : b -> wire -> wire -> wire
  val bnot : b -> wire -> wire
  val bor : b -> wire -> wire -> wire
  val constant : b -> bool -> wire
  (** Encoded as [x XOR x] (false) / its negation (true). *)

  val finish : b -> outputs:wire list -> t
end

val less_than : bits:int -> t
(** 2n inputs (a then b, LSB first); one output: a < b (unsigned). *)

val minimum : bits:int -> k:int -> t
(** k·n inputs (k unsigned values); n outputs: the minimum value.  A
    tournament of comparator+mux stages — the circuit A's neighbors would
    jointly evaluate to verify the §3.3 promise with SMC. *)

val majority_vote : voters:int -> t
(** [voters] one-bit ballots; one output: majority (the FairplayMP-style
    calibration task of §3.1). *)
