module Bgp = Pvr_bgp

type disclosure = {
  inputs : (Bgp.Asn.t * Bgp.Route.t) list;
  chosen : Bgp.Route.t option;
}

let disclose ~inputs ~chosen = { inputs; chosen }

let verify_shortest d =
  match (d.chosen, d.inputs) with
  | None, [] -> true
  | None, _ -> false
  | Some _, [] -> false
  | Some r, _ ->
      let min_len =
        List.fold_left
          (fun acc (_, r) -> min acc (Bgp.Route.path_length r))
          max_int d.inputs
      in
      Bgp.Route.path_length r = min_len
      && List.exists (fun (_, r') -> Bgp.Route.equal r r') d.inputs

let revealed_paths d = List.map (fun (_, r) -> r.Bgp.Route.as_path) d.inputs

let disclosure_bytes d =
  List.fold_left
    (fun acc (_, r) -> acc + String.length (Bgp.Route.encode r) + 4)
    (match d.chosen with
    | Some r -> String.length (Bgp.Route.encode r)
    | None -> 0)
    d.inputs
