type t = { c_gate_s : float; c_latency_s : float; c_zkp_gate_s : float }

let smc_seconds m ~and_gates ~rounds ~parties =
  (float_of_int and_gates *. float_of_int (parties * parties) *. m.c_gate_s)
  +. (float_of_int rounds *. m.c_latency_s)

let zkp_seconds m ~gates = float_of_int gates *. m.c_zkp_gate_s

let smc_seconds_for m circuit ~parties =
  smc_seconds m
    ~and_gates:(Circuit.and_count circuit)
    ~rounds:(Circuit.and_depth circuit + 1)
    ~parties

let calibrate ~anchor_seconds ~voters =
  let c = Circuit.majority_vote ~voters in
  let and_gates = Circuit.and_count c in
  let rounds = Circuit.and_depth c + 1 in
  let c_latency_s = 0.002 in
  let residual = anchor_seconds -. (float_of_int rounds *. c_latency_s) in
  let c_gate_s =
    residual /. (float_of_int and_gates *. float_of_int (voters * voters))
  in
  (* Generic ZKP (2011-era, pre-SNARK): on the order of a millisecond of
     prover work per gate. *)
  { c_gate_s; c_latency_s; c_zkp_gate_s = 0.001 }

let default = calibrate ~anchor_seconds:15.0 ~voters:5

let anchor_check m =
  let c = Circuit.majority_vote ~voters:5 in
  smc_seconds_for m c ~parties:5
