(** The full-disclosure baseline (§1: "We could enable complete verification
    by revealing all routing tables, similar to [NetReview, NSDI 2009], but
    then everything is revealed").

    A hands each neighbor its entire Adj-RIB-In for the prefix plus the
    chosen route; the neighbor recomputes the decision and compares.
    Verification is trivial and complete — the cost is total loss of input
    privacy, which experiment E7 quantifies with {!Pvr.Leakage} and a
    Gao-inference attack on the revealed paths. *)

type disclosure = {
  inputs : (Pvr_bgp.Asn.t * Pvr_bgp.Route.t) list;  (** the full Adj-RIB-In *)
  chosen : Pvr_bgp.Route.t option;
}

val disclose :
  inputs:(Pvr_bgp.Asn.t * Pvr_bgp.Route.t) list ->
  chosen:Pvr_bgp.Route.t option ->
  disclosure

val verify_shortest : disclosure -> bool
(** Recompute: is the chosen route one of the shortest inputs (or absent
    exactly when there are no inputs)? *)

val revealed_paths : disclosure -> Pvr_bgp.Asn.t list list
(** The AS paths a neighbor learns — feed for
    {!Pvr_bgp.Gao_inference.infer}. *)

val disclosure_bytes : disclosure -> int
(** Wire size of the disclosure (for the E6/E7 cost columns). *)
