(** n-party XOR secret sharing of bits (the GMW substrate). *)

val share : Pvr_crypto.Drbg.t -> parties:int -> bool -> bool array
(** Random shares XOR-ing to the secret. *)

val reconstruct : bool array -> bool

val share_bits : Pvr_crypto.Drbg.t -> parties:int -> bool array -> bool array array
(** [share_bits rng ~parties secrets].(p).(i) is party p's share of bit i. *)

val reconstruct_bits : bool array array -> bool array
