(** A GMW-style semi-honest multiparty evaluation of boolean circuits,
    with Beaver multiplication triples from a simulated trusted dealer.

    This is the §3.1 strawman made runnable: the parties really do evaluate
    the circuit on XOR shares — XOR gates locally, each AND gate consuming
    one preprocessed triple and one round of openings — and the statistics
    (AND gates, rounds, bytes moved) feed {!Cost_model}, which converts them
    into wall-clock estimates anchored to the published FairplayMP number.

    A real deployment would generate triples with oblivious transfer; the
    dealer substitution preserves the online communication pattern, which is
    what the cost comparison needs (DESIGN.md, substitution table). *)

type stats = {
  parties : int;
  and_gates : int;     (** triples consumed *)
  rounds : int;        (** communication rounds (AND depth + reconstruction) *)
  bits_sent : int;     (** total bits broadcast during openings *)
  wall_ns : int64;     (** measured local simulation time *)
}

val run :
  Pvr_crypto.Drbg.t ->
  parties:int ->
  Circuit.t ->
  inputs:bool array ->
  bool list * stats
(** Share the inputs among [parties], evaluate, reconstruct the outputs.
    The functional result always equals {!Circuit.eval}. *)
