let share rng ~parties secret =
  if parties < 1 then invalid_arg "Secret_share.share: need parties";
  let shares = Array.init parties (fun _ -> Pvr_crypto.Drbg.bool rng) in
  let xor_rest =
    Array.fold_left (fun acc s -> acc <> s) false
      (Array.sub shares 1 (parties - 1))
  in
  shares.(0) <- secret <> xor_rest;
  shares

let reconstruct shares = Array.fold_left (fun acc s -> acc <> s) false shares

let share_bits rng ~parties secrets =
  let per_secret = Array.map (share rng ~parties) secrets in
  Array.init parties (fun p ->
      Array.map (fun shares -> shares.(p)) per_secret)

let reconstruct_bits shares_by_party =
  let parties = Array.length shares_by_party in
  if parties = 0 then [||]
  else
    Array.init
      (Array.length shares_by_party.(0))
      (fun i ->
        let acc = ref false in
        for p = 0 to parties - 1 do
          acc := !acc <> shares_by_party.(p).(i)
        done;
        !acc)
