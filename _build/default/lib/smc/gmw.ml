type stats = {
  parties : int;
  and_gates : int;
  rounds : int;
  bits_sent : int;
  wall_ns : int64;
}

(* Beaver: to compute z = x AND y on shares, take a preprocessed triple
   (a, b, c) with c = a AND b, open d = x^a and e = y^b, then
   z = c ^ (d AND b) ^ (e AND a) ^ (d AND e)   [the d AND e term is added
   by one designated party].  All operations are per-party on shares. *)
let run rng ~parties circuit ~inputs =
  if parties < 2 then invalid_arg "Gmw.run: need at least 2 parties";
  let t0 = Pvr_crypto.Drbg.generate rng 0 in
  ignore t0;
  let start = Unix.gettimeofday () in
  let n_wires = circuit.Circuit.n_inputs + Array.length circuit.Circuit.gates in
  (* shares.(p).(w) = party p's share of wire w *)
  let shares = Array.make_matrix parties n_wires false in
  let input_shares = Secret_share.share_bits rng ~parties inputs in
  for p = 0 to parties - 1 do
    Array.blit input_shares.(p) 0 shares.(p) 0 circuit.Circuit.n_inputs
  done;
  let and_gates = ref 0 in
  let bits_sent = ref 0 in
  Array.iteri
    (fun i gate ->
      let w = circuit.Circuit.n_inputs + i in
      match gate with
      | Circuit.Xor (x, y) ->
          for p = 0 to parties - 1 do
            shares.(p).(w) <- shares.(p).(x) <> shares.(p).(y)
          done
      | Circuit.Not x ->
          (* Party 0 flips; everyone else copies. *)
          shares.(0).(w) <- not shares.(0).(x);
          for p = 1 to parties - 1 do
            shares.(p).(w) <- shares.(p).(x)
          done
      | Circuit.And (x, y) ->
          incr and_gates;
          (* Dealer triple, shared among the parties. *)
          let a = Pvr_crypto.Drbg.bool rng in
          let b = Pvr_crypto.Drbg.bool rng in
          let c = a && b in
          let a_sh = Secret_share.share rng ~parties a in
          let b_sh = Secret_share.share rng ~parties b in
          let c_sh = Secret_share.share rng ~parties c in
          (* Open d = x ^ a and e = y ^ b: every party broadcasts its two
             share bits. *)
          let d = ref false and e = ref false in
          for p = 0 to parties - 1 do
            d := !d <> (shares.(p).(x) <> a_sh.(p));
            e := !e <> (shares.(p).(y) <> b_sh.(p));
            bits_sent := !bits_sent + (2 * (parties - 1))
          done;
          for p = 0 to parties - 1 do
            let z =
              c_sh.(p)
              <> (!d && b_sh.(p))
              <> (!e && a_sh.(p))
              <> (p = 0 && !d && !e)
            in
            shares.(p).(w) <- z
          done)
    circuit.Circuit.gates;
  (* Reconstruct the outputs: one final broadcast round. *)
  let outputs =
    List.map
      (fun w ->
        bits_sent := !bits_sent + (parties * (parties - 1));
        let acc = ref false in
        for p = 0 to parties - 1 do
          acc := !acc <> shares.(p).(w)
        done;
        !acc)
      circuit.Circuit.outputs
  in
  let wall_ns =
    Int64.of_float ((Unix.gettimeofday () -. start) *. 1e9)
  in
  ( outputs,
    {
      parties;
      and_gates = !and_gates;
      rounds = Circuit.and_depth circuit + 1;
      bits_sent = !bits_sent;
      wall_ns;
    } )
