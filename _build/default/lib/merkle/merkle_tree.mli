(** Dense binary Merkle hash trees (Merkle 1980).

    Used for §3.8 batch signing: during a BGP update burst, a router builds
    a small MHT over the batch, signs only the root, and reveals each route
    with its authentication path ("it seems feasible to sign messages in
    batches, perhaps using a small MHT to reveal batched routes
    individually").  Experiment E5 measures the amortization. *)

type t

val build : string list -> t
(** Build over the given leaf values, in order.  The list may be empty. *)

val root : t -> string
(** 32-byte root digest.  The root of the empty tree is a distinguished
    constant. *)

val size : t -> int
(** Number of leaves. *)

type proof = { index : int; path : (string * [ `Left | `Right ]) list }
(** Sibling digests from the leaf up; the tag says on which side the sibling
    sits at that level. *)

val prove : t -> int -> proof
(** Authentication path for leaf [index]. @raise Invalid_argument if out of
    range. *)

val verify : root:string -> leaf:string -> proof -> bool
(** Check that [leaf] is the [proof.index]-th leaf of the tree with the
    given root. *)

val encode_proof : proof -> string
val decode_proof : string -> proof option
