lib/merkle/prefix_tree.ml: Array Bitstring List Pvr_crypto String
