lib/merkle/bitstring.mli: Format
