lib/merkle/prefix_tree.mli: Bitstring
