lib/merkle/merkle_tree.mli:
