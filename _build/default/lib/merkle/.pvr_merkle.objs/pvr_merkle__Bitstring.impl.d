lib/merkle/bitstring.ml: Bytes Char Format List Pvr_crypto String
