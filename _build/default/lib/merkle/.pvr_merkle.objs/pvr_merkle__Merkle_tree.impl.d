lib/merkle/merkle_tree.ml: Array List Pvr_crypto String
