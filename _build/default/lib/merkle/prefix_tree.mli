(** The §3.6 commitment structure: a Merkle hash tree whose (conceptual)
    leaves are addressed by prefix-free bitstrings.

    The network instantiates only a) the leaves that exist, b) the inner
    nodes on root-to-leaf paths, and c) the immediate children of those
    inner nodes.  An uninstantiated child is represented by a *blinded*
    digest derived from a per-tree secret seed and the child's position, so
    a neighbor receiving a disclosure proof "does not know whether the hash
    values are random bitstrings or hashes of 'real' interior nodes" — the
    proof reveals nothing about the presence or absence of any other vertex
    (structural privacy of selective disclosure).

    The root digest is what the network signs and publishes (the commitment
    mechanism of §3.4); {!prove} implements the selective-disclosure
    mechanism. *)

type t

val build : seed:string -> (Bitstring.t * string) list -> t
(** [build ~seed entries] commits to every [(path, value)] pair.  [seed] is
    the committer's private blinding secret.
    @raise Invalid_argument if the paths are not prefix-free or the list
    contains a duplicate path. *)

val root : t -> string
(** The 32-byte root digest to be signed and gossiped. *)

val cardinal : t -> int

val mem : t -> Bitstring.t -> bool

val find : t -> Bitstring.t -> string option
(** The committed value at a path, if any. *)

type proof
(** A selective-disclosure proof: the sibling digests along one path. *)

val prove : t -> Bitstring.t -> (string * proof) option
(** [prove t path] is [Some (value, proof)] if the path is instantiated. *)

val verify : root:string -> path:Bitstring.t -> value:string -> proof -> bool
(** Recompute the root from the disclosed value and the proof. *)

val proof_length : proof -> int
(** Number of sibling digests (equals the path length). *)

val encode_proof : proof -> string
val decode_proof : string -> proof option
