module H = Pvr_crypto.Sha256
module BU = Pvr_crypto.Bytes_util

(* Domain-separated hashing prevents leaf/node confusion attacks. *)
let leaf_hash v = H.digest ("mt-leaf:" ^ v)
let node_hash l r = H.digest ("mt-node:" ^ l ^ r)
let empty_root = H.digest "mt-empty"

type t = { levels : string array array; n : int }
(* [levels.(0)] are leaf hashes; each higher level pairs the one below.  An
   odd node is promoted by hashing with itself (Bitcoin-style duplication is
   avoided: we carry the node up unchanged to keep proofs minimal). *)

let build leaves =
  let n = List.length leaves in
  if n = 0 then { levels = [| [||] |]; n = 0 }
  else begin
    let level0 = Array.of_list (List.map leaf_hash leaves) in
    let rec up acc level =
      if Array.length level <= 1 then List.rev (level :: acc)
      else begin
        let m = Array.length level in
        let next =
          Array.init ((m + 1) / 2) (fun i ->
              if (2 * i) + 1 < m then node_hash level.(2 * i) level.((2 * i) + 1)
              else level.(2 * i))
        in
        up (level :: acc) next
      end
    in
    { levels = Array.of_list (up [] level0); n }
  end

let root t =
  if t.n = 0 then empty_root
  else begin
    let top = t.levels.(Array.length t.levels - 1) in
    top.(0)
  end

let size t = t.n

type proof = { index : int; path : (string * [ `Left | `Right ]) list }

let prove t index =
  if index < 0 || index >= t.n then invalid_arg "Merkle_tree.prove: index";
  let path = ref [] in
  let i = ref index in
  for level = 0 to Array.length t.levels - 2 do
    let nodes = t.levels.(level) in
    let sibling = if !i mod 2 = 0 then !i + 1 else !i - 1 in
    if sibling < Array.length nodes then
      path :=
        (nodes.(sibling), if sibling < !i then `Left else `Right) :: !path;
    i := !i / 2
  done;
  { index; path = List.rev !path }

let verify ~root:expected ~leaf proof =
  let acc = ref (leaf_hash leaf) in
  List.iter
    (fun (sib, side) ->
      acc :=
        match side with
        | `Left -> node_hash sib !acc
        | `Right -> node_hash !acc sib)
    proof.path;
  BU.equal_ct !acc expected

let encode_proof p =
  BU.encode_list
    (BU.be32 p.index
    :: List.map
         (fun (h, side) -> (match side with `Left -> "L" | `Right -> "R") ^ h)
         p.path)

let decode_proof s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  let read_item pos =
    match read_u32 pos with
    | None -> None
    | Some (len, pos) ->
        if pos + len > String.length s then None
        else Some (String.sub s pos len, pos + len)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) when count >= 1 -> begin
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_item pos with
          | None -> None
          | Some (item, pos) -> items (n - 1) pos (item :: acc)
      in
      match items count pos [] with
      | Some (idx :: rest) when String.length idx = 4 -> begin
          let index = BU.read_be32 idx 0 in
          let step item =
            if String.length item <> 33 then None
            else
              let side =
                match item.[0] with
                | 'L' -> Some `Left
                | 'R' -> Some `Right
                | _ -> None
              in
              match side with
              | None -> None
              | Some side -> Some (String.sub item 1 32, side)
          in
          let rec map_all = function
            | [] -> Some []
            | x :: xs -> begin
                match (step x, map_all xs) with
                | Some y, Some ys -> Some (y :: ys)
                | _ -> None
              end
          in
          match map_all rest with
          | Some path -> Some { index; path }
          | None -> None
        end
      | _ -> None
    end
  | Some _ -> None
