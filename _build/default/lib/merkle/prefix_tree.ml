module H = Pvr_crypto.Sha256
module BU = Pvr_crypto.Bytes_util

type node =
  | Leaf of string                     (* committed value *)
  | Inner of node option * node option (* children for bit 0 / bit 1 *)

type t = { seed : string; entries : (Bitstring.t * string) list; top : node option }

let leaf_hash v = H.digest ("pt-leaf:" ^ v)
let node_hash l r = H.digest ("pt-node:" ^ l ^ r)

(* Digest standing in for an uninstantiated subtree at [path].  Keyed by the
   private seed, so it is indistinguishable from a real subtree digest to
   anyone who does not hold the seed. *)
let blind_hash seed path =
  H.digest ("pt-blind:" ^ BU.encode_list [ seed; Bitstring.to_string path ])

let insert top path value =
  let n = Bitstring.length path in
  let rec go node i =
    if i = n then begin
      match node with
      | None -> Leaf value
      | Some (Leaf _) -> invalid_arg "Prefix_tree.build: duplicate path"
      | Some (Inner _) -> invalid_arg "Prefix_tree.build: not prefix-free"
    end
    else begin
      let zero, one =
        match node with
        | None -> (None, None)
        | Some (Inner (z, o)) -> (z, o)
        | Some (Leaf _) -> invalid_arg "Prefix_tree.build: not prefix-free"
      in
      if Bitstring.get path i then Inner (zero, Some (go one (i + 1)))
      else Inner (Some (go zero (i + 1)), one)
    end
  in
  Some (go top 0)

let build ~seed entries =
  let paths = List.map fst entries in
  if not (Bitstring.prefix_free paths) then
    invalid_arg "Prefix_tree.build: paths are not prefix-free";
  let top =
    List.fold_left (fun acc (p, v) -> insert acc p v) None entries
  in
  { seed; entries; top }

let rec hash_node seed path = function
  | None -> blind_hash seed path
  | Some (Leaf v) -> leaf_hash v
  | Some (Inner (z, o)) ->
      node_hash
        (hash_node seed (Bitstring.append_bit path false) z)
        (hash_node seed (Bitstring.append_bit path true) o)

let root t = hash_node t.seed Bitstring.empty t.top

let cardinal t = List.length t.entries

let find t path =
  List.find_map
    (fun (p, v) -> if Bitstring.equal p path then Some v else None)
    t.entries

let mem t path = find t path <> None

type proof = string list
(* Sibling digest at each level, from the root down to the leaf's parent. *)

let prove t path =
  match find t path with
  | None -> None
  | Some value ->
      let n = Bitstring.length path in
      let rec walk node prefix i acc =
        if i = n then List.rev acc
        else begin
          match node with
          | Some (Inner (z, o)) ->
              let bit = Bitstring.get path i in
              let child = if bit then o else z in
              let sib = if bit then z else o in
              let sib_path = Bitstring.append_bit prefix (not bit) in
              let sib_hash = hash_node t.seed sib_path sib in
              walk child (Bitstring.append_bit prefix bit) (i + 1)
                (sib_hash :: acc)
          | _ -> assert false (* [find] guaranteed the path exists *)
        end
      in
      Some (value, walk t.top Bitstring.empty 0 [])

let verify ~root:expected ~path ~value proof =
  let n = Bitstring.length path in
  List.length proof = n
  &&
  (* Fold from the leaf back to the root; sibling list is root-down, so pair
     it with bit indices and fold in reverse. *)
  let acc = ref (leaf_hash value) in
  let siblings = Array.of_list proof in
  for i = n - 1 downto 0 do
    let sib = siblings.(i) in
    acc :=
      if Bitstring.get path i then node_hash sib !acc else node_hash !acc sib
  done;
  BU.equal_ct !acc expected

let proof_length = List.length

let encode_proof p = BU.encode_list p

let decode_proof s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if len <> 32 || pos + len > String.length s then None
              else items (n - 1) (pos + len) (String.sub s pos len :: acc)
      in
      items count pos []
