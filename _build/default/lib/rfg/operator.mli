(** Route-flow-graph operators (§2.1).

    "A rule is an operation that takes some set of input routes and emits a
    set of output routes (which may be a single route, or no route at
    all)."  Operators consume the values of their predecessor variables (in
    edge order) and produce one value.

    The two operators the paper builds protocols for are {!Exists} (§3.2)
    and {!Min_path_length} (§3.3); the rest make the language rich enough to
    express the §2 promise list, the Figure-2 policy, and the §4 "more
    operators" challenge items (communities, AS-presence tests). *)

type t =
  | Exists
      (** Emit one input route (the first available) iff any input variable
          holds a route — §3.2. *)
  | Min_path_length
      (** Emit the input routes of minimal AS-path length — §3.3. *)
  | Union  (** All routes from all inputs. *)
  | Best of Pvr_bgp.Decision.step list
      (** The BGP decision pipeline as one (composite) operator. *)
  | Filter of Pvr_bgp.Policy.match_cond list
      (** Keep routes satisfying the conjunction. *)
  | Not_through of Pvr_bgp.Asn.t
      (** Drop routes whose path contains the AS — §4 "check for the
          presence of particular ASes on the path". *)
  | Has_community of Pvr_bgp.Route.community
      (** Keep routes carrying the community — §4 "operators that evaluate
          communities". *)
  | Within_hops_of_min of int
      (** Keep routes at most n hops longer than the shortest input —
          promise 3 of §2. *)
  | Shorter_of
      (** Binary: emit the first input if it beats the second on path
          length, else the second — the Figure-2 combiner ("unless N1
          provides a shorter route"). *)
  | First_nonempty
      (** Emit the first input variable that holds any route (ordered
          fallback/preference). *)

val arity : t -> int option
(** Fixed arity if the operator requires one ([Shorter_of] is binary);
    [None] when variadic. *)

val apply : t -> Pvr_bgp.Route.t list list -> Pvr_bgp.Route.t list
(** Evaluate on the ordered list of input-variable values.
    @raise Invalid_argument if a fixed arity is violated. *)

val name : t -> string
(** Stable identifier used in commitments and disclosures. *)

val encode : t -> string
(** Injective byte encoding (committed to in the vertex MHT). *)

val decode : string -> t option
(** Inverse of {!encode}; [None] on malformed input.  Verifiers use it to
    interpret a disclosed operator payload. *)

val pp : Format.formatter -> t -> unit
