module Bgp = Pvr_bgp

type t =
  | Shortest_route
  | Shortest_from of Bgp.Asn.t list
  | Within_hops of int
  | No_longer_than_others
  | Export_if_any of Bgp.Asn.t list
  | Prefer_unless_shorter of { fallback : Bgp.Asn.t list; override : Bgp.Asn.t }

let describe = function
  | Shortest_route -> "export the shortest route received"
  | Shortest_from subset ->
      "export the shortest route received from {"
      ^ String.concat ", " (List.map Bgp.Asn.to_string subset)
      ^ "}"
  | Within_hops n ->
      Printf.sprintf "export a route at most %d hops longer than the best" n
  | No_longer_than_others ->
      "the exported route is no longer than any other export"
  | Export_if_any subset ->
      "export some route whenever {"
      ^ String.concat ", " (List.map Bgp.Asn.to_string subset)
      ^ "} provides one"
  | Prefer_unless_shorter { fallback; override } ->
      Printf.sprintf "export a route via {%s} unless %s provides a shorter one"
        (String.concat ", " (List.map Bgp.Asn.to_string fallback))
        (Bgp.Asn.to_string override)

let routes_from subset inputs =
  List.filter_map
    (fun (n, r) -> if List.exists (Bgp.Asn.equal n) subset then Some r else None)
    inputs

let min_length routes =
  List.fold_left (fun acc r -> min acc (Bgp.Route.path_length r)) max_int routes

(* The exported route is judged *before* the AS prepends itself: PVR
   compares it against the input routes as stored in the Adj-RIB-In. *)
let permitted promise ~inputs ?(other_exports = []) ~exported () =
  let all = List.map snd inputs in
  match promise with
  | Shortest_route -> begin
      match (exported, all) with
      | None, [] -> true
      | None, _ -> false
      | Some _, [] -> false
      | Some r, _ -> Bgp.Route.path_length r = min_length all
    end
  | Shortest_from subset -> begin
      let candidates = routes_from subset inputs in
      match (exported, candidates) with
      | None, [] -> true
      | None, _ -> false
      | Some _, [] -> false
      | Some r, _ -> Bgp.Route.path_length r = min_length candidates
    end
  | Within_hops n -> begin
      match (exported, all) with
      | None, [] -> true
      | None, _ -> false
      | Some _, [] -> false
      | Some r, _ -> Bgp.Route.path_length r <= min_length all + n
    end
  | No_longer_than_others -> begin
      match exported with
      | None -> other_exports = []
      | Some r ->
          List.for_all
            (fun other ->
              Bgp.Route.path_length r <= Bgp.Route.path_length other)
            other_exports
    end
  | Export_if_any subset -> begin
      let candidates = routes_from subset inputs in
      match (exported, candidates) with
      | None, [] -> true
      | None, _ -> false
      | Some _, [] -> false
      | Some _, _ -> true
    end
  | Prefer_unless_shorter { fallback; override } -> begin
      let fallback_routes = routes_from fallback inputs in
      let override_routes = routes_from [ override ] inputs in
      match (exported, fallback_routes, override_routes) with
      | None, [], [] -> true
      | None, _, _ -> false
      | Some _, [], [] -> false
      | Some r, [], _ -> Bgp.Route.path_length r = min_length override_routes
      | Some r, _, [] ->
          (* No override available: any fallback route is permitted. *)
          List.exists (Bgp.Route.equal r) fallback_routes
      | Some r, _, _ ->
          let fm = min_length fallback_routes in
          let om = min_length override_routes in
          if om < fm then Bgp.Route.path_length r = om
          else List.exists (Bgp.Route.equal r) fallback_routes
    end

let input_var asn = "r:" ^ Bgp.Asn.to_string asn
let output_var asn = "out:" ^ Bgp.Asn.to_string asn

let with_inputs neighbors g =
  List.fold_left (fun g n -> Rfg.add_var g (input_var n) (Rfg.Input n)) g neighbors

let reference_rfg promise ~beneficiary ~neighbors =
  (* Input variables must exist for every neighbor the promise names, even
     if that neighbor happens not to be announcing anything right now. *)
  let involved =
    match promise with
    | Shortest_from subset | Export_if_any subset -> subset
    | Prefer_unless_shorter { fallback; override } -> override :: fallback
    | Shortest_route | Within_hops _ | No_longer_than_others -> []
  in
  let neighbors =
    List.fold_left
      (fun acc n -> if List.exists (Bgp.Asn.equal n) acc then acc else acc @ [ n ])
      neighbors involved
  in
  let out = output_var beneficiary in
  let base =
    Rfg.empty |> with_inputs neighbors |> fun g ->
    Rfg.add_var g out (Rfg.Output beneficiary)
  in
  let all_inputs = List.map input_var neighbors in
  match promise with
  | Shortest_route ->
      Rfg.add_op base "op:min" Operator.Min_path_length ~inputs:all_inputs
        ~output:out
  | Shortest_from subset ->
      Rfg.add_op base "op:min" Operator.Min_path_length
        ~inputs:(List.map input_var subset)
        ~output:out
  | Within_hops n ->
      Rfg.add_op base "op:within" (Operator.Within_hops_of_min n)
        ~inputs:all_inputs ~output:out
  | No_longer_than_others ->
      (* Expressed as: export the shortest route (which trivially satisfies
         "no longer than what anyone else gets"). *)
      Rfg.add_op base "op:min" Operator.Min_path_length ~inputs:all_inputs
        ~output:out
  | Export_if_any subset ->
      Rfg.add_op base "op:exists" Operator.Exists
        ~inputs:(List.map input_var subset)
        ~output:out
  | Prefer_unless_shorter { fallback; override } ->
      let g = Rfg.add_var base "v:fallback-min" Rfg.Internal in
      let g =
        Rfg.add_op g "op:min" Operator.Min_path_length
          ~inputs:(List.map input_var fallback)
          ~output:"v:fallback-min"
      in
      Rfg.add_op g "op:choose" Operator.Shorter_of
        ~inputs:[ input_var override; "v:fallback-min" ]
        ~output:out

let holds_on_rfg promise ~rfg ~beneficiary ~inputs =
  let seeded =
    List.map (fun (n, r) -> (input_var n, [ r ])) inputs
  in
  let valuation = Rfg.eval rfg ~inputs:seeded in
  let exported =
    match Rfg.value valuation (output_var beneficiary) with
    | [] -> None
    | r :: _ -> Some r
  in
  permitted promise ~inputs ~exported ()
