(** The promises of §2.

    "These promises can be understood as specifying, for each set of input
    routes the AS might receive, some set of permissible routes that its
    output must be drawn from.  A violation occurs whenever an AS emits a
    route that was not in its permitted set, given the inputs it had
    received."

    {!permitted} is that ground-truth predicate (the oracle the experiments
    compare PVR verdicts against); {!reference_rfg} builds a route-flow
    graph that implements each promise. *)

type t =
  | Shortest_route
      (** §2 promise 1: "I will give you the shortest route I receive." *)
  | Shortest_from of Pvr_bgp.Asn.t list
      (** §2 promise 2 (and Fig. 1): shortest among a known neighbor
          subset. *)
  | Within_hops of int
      (** §2 promise 3: "a route no more than n hops longer than my best
          route." *)
  | No_longer_than_others
      (** §2 promise 4: "the route you get is no longer than what I tell
          anybody else" — judged against the other exported routes. *)
  | Export_if_any of Pvr_bgp.Asn.t list
      (** §3.2: export something whenever at least one of the subset
          provides a route (the existential promise). *)
  | Prefer_unless_shorter of { fallback : Pvr_bgp.Asn.t list; override : Pvr_bgp.Asn.t }
      (** Fig. 2: "I will export some route via N2..Nk unless N1 provides a
          shorter route" ([override] = N1). *)

val describe : t -> string

(** Ground truth.  [inputs] are the routes the AS received, tagged by
    neighbor; [exported] is what it sent the beneficiary; [other_exports]
    are the routes it sent everyone else (only promise 4 looks at them). *)
val permitted :
  t ->
  inputs:(Pvr_bgp.Asn.t * Pvr_bgp.Route.t) list ->
  ?other_exports:Pvr_bgp.Route.t list ->
  exported:Pvr_bgp.Route.t option ->
  unit ->
  bool

val reference_rfg :
  t -> beneficiary:Pvr_bgp.Asn.t -> neighbors:Pvr_bgp.Asn.t list -> Rfg.t
(** A route-flow graph implementing the promise for an AS whose input
    neighbors are [neighbors] and whose output goes to [beneficiary].
    Input variables are named ["r:ASn"], the output ["out:ASb"]. *)

val input_var : Pvr_bgp.Asn.t -> Rfg.vertex_id
val output_var : Pvr_bgp.Asn.t -> Rfg.vertex_id

val holds_on_rfg :
  t ->
  rfg:Rfg.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  inputs:(Pvr_bgp.Asn.t * Pvr_bgp.Route.t) list ->
  bool
(** Evaluate the graph on the inputs and check the produced export against
    {!permitted} — used by tests to validate reference graphs. *)
