module Bgp = Pvr_bgp

type issue =
  | Missing_vertex of Rfg.vertex_id
  | Invisible_vertex of Rfg.vertex_id
  | Wrong_operator of { vertex : Rfg.vertex_id; expected : string; found : string }
  | Wrong_wiring of { vertex : Rfg.vertex_id; detail : string }
  | No_output of Bgp.Asn.t

let pp_issue ppf = function
  | Missing_vertex v -> Format.fprintf ppf "missing vertex %s" v
  | Invisible_vertex v -> Format.fprintf ppf "vertex %s not visible" v
  | Wrong_operator { vertex; expected; found } ->
      Format.fprintf ppf "vertex %s: expected operator %s, found %s" vertex
        expected found
  | Wrong_wiring { vertex; detail } ->
      Format.fprintf ppf "vertex %s: %s" vertex detail
  | No_output asn -> Format.fprintf ppf "no output variable for %a" Bgp.Asn.pp asn

let same_set a b =
  List.sort String.compare a = List.sort String.compare b

(* Walk backward from the beneficiary's output variable and compare the
   producing structure with what the promise requires. *)
let implements g ~promise ~beneficiary ~neighbors =
  let out = Promise.output_var beneficiary in
  match Rfg.kind_of_var g out with
  | None | Some (Rfg.Input _) | Some Rfg.Internal -> [ No_output beneficiary ]
  | Some (Rfg.Output _) -> begin
      match Rfg.producer_of_var g out with
      | None ->
          [ Wrong_wiring { vertex = out; detail = "output has no producer" } ]
      | Some op_id -> begin
          let found_op = Option.get (Rfg.operator_of g op_id) in
          let found = Operator.name found_op in
          let inputs = Rfg.inputs_of_op g op_id in
          let expect_op expected ~wanted_inputs =
            let issues = ref [] in
            if found <> expected then
              issues :=
                Wrong_operator { vertex = op_id; expected; found } :: !issues;
            if not (same_set inputs wanted_inputs) then
              issues :=
                Wrong_wiring
                  {
                    vertex = op_id;
                    detail =
                      "inputs {" ^ String.concat ", " inputs
                      ^ "} do not match required {"
                      ^ String.concat ", " wanted_inputs
                      ^ "}";
                  }
                :: !issues;
            List.iter
              (fun v ->
                if Rfg.kind_of_var g v = None then
                  issues := Missing_vertex v :: !issues)
              wanted_inputs;
            List.rev !issues
          in
          match promise with
          | Promise.Shortest_route ->
              expect_op "min"
                ~wanted_inputs:(List.map Promise.input_var neighbors)
          | Promise.Shortest_from subset ->
              expect_op "min" ~wanted_inputs:(List.map Promise.input_var subset)
          | Promise.Within_hops n ->
              ignore n;
              expect_op "within-hops-of-min"
                ~wanted_inputs:(List.map Promise.input_var neighbors)
          | Promise.No_longer_than_others ->
              expect_op "min"
                ~wanted_inputs:(List.map Promise.input_var neighbors)
          | Promise.Export_if_any subset ->
              expect_op "exists"
                ~wanted_inputs:(List.map Promise.input_var subset)
          | Promise.Prefer_unless_shorter { fallback; override } -> begin
              (* Expect Shorter_of(override, m) where m is produced by a min
                 over the fallback inputs. *)
              let issues = ref [] in
              if found <> "shorter-of" then
                issues :=
                  Wrong_operator { vertex = op_id; expected = "shorter-of"; found }
                  :: !issues;
              (match inputs with
              | [ first; second ] -> begin
                  if first <> Promise.input_var override then
                    issues :=
                      Wrong_wiring
                        {
                          vertex = op_id;
                          detail = "first input is not the override neighbor";
                        }
                      :: !issues;
                  match Rfg.producer_of_var g second with
                  | None ->
                      issues :=
                        Wrong_wiring
                          {
                            vertex = op_id;
                            detail = "second input has no producing operator";
                          }
                        :: !issues
                  | Some inner_id ->
                      let inner = Option.get (Rfg.operator_of g inner_id) in
                      if Operator.name inner <> "min" then
                        issues :=
                          Wrong_operator
                            {
                              vertex = inner_id;
                              expected = "min";
                              found = Operator.name inner;
                            }
                          :: !issues;
                      let wanted = List.map Promise.input_var fallback in
                      if not (same_set (Rfg.inputs_of_op g inner_id) wanted)
                      then
                        issues :=
                          Wrong_wiring
                            {
                              vertex = inner_id;
                              detail = "min is not over the fallback subset";
                            }
                          :: !issues
                end
              | _ ->
                  issues :=
                    Wrong_wiring
                      { vertex = op_id; detail = "shorter-of needs two inputs" }
                    :: !issues);
              List.rev !issues
            end
        end
    end

(* Who must see which vertex at protocol run time (§3.2/§3.3): every input
   neighbor and the beneficiary check the top operator; each neighbor sees
   its own input variable; the beneficiary sees the output. *)
let verifiable_under g ~promise ~beneficiary ~neighbors ~visible =
  let structural = implements g ~promise ~beneficiary ~neighbors in
  if structural <> [] then structural
  else begin
    let out = Promise.output_var beneficiary in
    let op_id = Option.get (Rfg.producer_of_var g out) in
    let issues = ref [] in
    let need viewer vertex =
      if not (visible ~viewer vertex) then
        issues := Invisible_vertex vertex :: !issues
    in
    need beneficiary out;
    need beneficiary op_id;
    let involved =
      match promise with
      | Promise.Shortest_from subset | Promise.Export_if_any subset -> subset
      | Promise.Prefer_unless_shorter { fallback; override } ->
          override :: fallback
      | _ -> neighbors
    in
    List.iter
      (fun n ->
        need n op_id;
        need n (Promise.input_var n))
      involved;
    List.rev !issues
  end
