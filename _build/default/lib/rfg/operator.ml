module Bgp = Pvr_bgp
module BU = Pvr_crypto.Bytes_util

type t =
  | Exists
  | Min_path_length
  | Union
  | Best of Bgp.Decision.step list
  | Filter of Bgp.Policy.match_cond list
  | Not_through of Bgp.Asn.t
  | Has_community of Bgp.Route.community
  | Within_hops_of_min of int
  | Shorter_of
  | First_nonempty

let arity = function Shorter_of -> Some 2 | _ -> None

let min_length routes =
  List.fold_left (fun acc r -> min acc (Bgp.Route.path_length r)) max_int routes

let apply op inputs =
  (match arity op with
  | Some n when List.length inputs <> n ->
      invalid_arg ("Operator.apply: " ^ "wrong arity")
  | _ -> ());
  let all = List.concat inputs in
  match op with
  | Exists -> ( match all with [] -> [] | r :: _ -> [ r ])
  | Min_path_length ->
      if all = [] then []
      else begin
        let m = min_length all in
        List.filter (fun r -> Bgp.Route.path_length r = m) all
      end
  | Union -> all
  | Best pipeline -> (
      match Bgp.Decision.best ~pipeline all with None -> [] | Some r -> [ r ])
  | Filter conds ->
      List.filter (fun r -> List.for_all (fun c -> Bgp.Policy.matches c r) conds) all
  | Not_through asn -> List.filter (fun r -> not (Bgp.Route.through asn r)) all
  | Has_community c -> List.filter (Bgp.Route.has_community c) all
  | Within_hops_of_min n ->
      if all = [] then []
      else begin
        let m = min_length all in
        List.filter (fun r -> Bgp.Route.path_length r <= m + n) all
      end
  | Shorter_of -> begin
      let shortest routes =
        let m = min_length routes in
        List.find_opt (fun r -> Bgp.Route.path_length r = m) routes
      in
      match List.map shortest inputs with
      | [ None; None ] -> []
      | [ Some r; None ] | [ None; Some r ] -> [ r ]
      | [ Some r1; Some r2 ] ->
          if Bgp.Route.path_length r1 < Bgp.Route.path_length r2 then [ r1 ]
          else [ r2 ]
      | _ -> invalid_arg "Operator.apply: Shorter_of is binary"
    end
  | First_nonempty -> (
      match List.find_opt (fun v -> v <> []) inputs with
      | Some v -> v
      | None -> [])

let name = function
  | Exists -> "exists"
  | Min_path_length -> "min"
  | Union -> "union"
  | Best _ -> "best"
  | Filter _ -> "filter"
  | Not_through _ -> "not-through"
  | Has_community _ -> "has-community"
  | Within_hops_of_min _ -> "within-hops-of-min"
  | Shorter_of -> "shorter-of"
  | First_nonempty -> "first-nonempty"

let encode_step (s : Bgp.Decision.step) =
  match s with
  | Bgp.Decision.Highest_local_pref -> "lp"
  | Bgp.Decision.Shortest_as_path -> "len"
  | Bgp.Decision.Lowest_origin -> "orig"
  | Bgp.Decision.Lowest_med -> "med"
  | Bgp.Decision.Lowest_neighbor -> "nbr"

let encode_cond (c : Bgp.Policy.match_cond) =
  match c with
  | Bgp.Policy.Match_prefix_exact p -> "pfx=" ^ Bgp.Prefix.to_string p
  | Bgp.Policy.Match_prefix_in p -> "pfx<" ^ Bgp.Prefix.to_string p
  | Bgp.Policy.Match_community (a, v) ->
      Printf.sprintf "comm=%d:%d" a v
  | Bgp.Policy.Match_as_in_path a -> "inpath=" ^ Bgp.Asn.to_string a
  | Bgp.Policy.Match_next_hop a -> "nh=" ^ Bgp.Asn.to_string a
  | Bgp.Policy.Match_path_length_le n -> "len<=" ^ string_of_int n
  | Bgp.Policy.Match_any -> "any"

let encode op =
  match op with
  | Exists | Min_path_length | Union | Shorter_of | First_nonempty ->
      BU.encode_list [ name op ]
  | Best steps -> BU.encode_list (name op :: List.map encode_step steps)
  | Filter conds -> BU.encode_list (name op :: List.map encode_cond conds)
  | Not_through a -> BU.encode_list [ name op; Bgp.Asn.to_string a ]
  | Has_community (a, v) ->
      BU.encode_list [ name op; Printf.sprintf "%d:%d" a v ]
  | Within_hops_of_min n -> BU.encode_list [ name op; string_of_int n ]

let decode_list s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else
      Some
        ( (Char.code s.[pos] lsl 24)
          lor (Char.code s.[pos + 1] lsl 16)
          lor (Char.code s.[pos + 2] lsl 8)
          lor Char.code s.[pos + 3],
          pos + 4 )
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if pos + len > String.length s then None
              else items (n - 1) (pos + len) (String.sub s pos len :: acc)
      in
      items count pos []

let decode_step = function
  | "lp" -> Some Bgp.Decision.Highest_local_pref
  | "len" -> Some Bgp.Decision.Shortest_as_path
  | "orig" -> Some Bgp.Decision.Lowest_origin
  | "med" -> Some Bgp.Decision.Lowest_med
  | "nbr" -> Some Bgp.Decision.Lowest_neighbor
  | _ -> None

let decode_asn s =
  if String.length s > 2 && String.sub s 0 2 = "AS" then
    Option.map Bgp.Asn.of_int
      (int_of_string_opt (String.sub s 2 (String.length s - 2)))
  else None

let decode_community s =
  match String.split_on_char ':' s with
  | [ a; v ] -> begin
      match (int_of_string_opt a, int_of_string_opt v) with
      | Some a, Some v when a >= 0 && v >= 0 -> Some (a, v)
      | _ -> None
    end
  | _ -> None

let decode_cond s =
  let param prefix_str =
    let n = String.length prefix_str in
    if String.length s > n && String.sub s 0 n = prefix_str then
      Some (String.sub s n (String.length s - n))
    else None
  in
  if s = "any" then Some Bgp.Policy.Match_any
  else
    match param "pfx=" with
    | Some p -> (
        match Bgp.Prefix.of_string p with
        | p -> Some (Bgp.Policy.Match_prefix_exact p)
        | exception Invalid_argument _ -> None)
    | None -> (
        match param "pfx<" with
        | Some p -> (
            match Bgp.Prefix.of_string p with
            | p -> Some (Bgp.Policy.Match_prefix_in p)
            | exception Invalid_argument _ -> None)
        | None -> (
            match param "comm=" with
            | Some c ->
                Option.map (fun c -> Bgp.Policy.Match_community c)
                  (decode_community c)
            | None -> (
                match param "inpath=" with
                | Some a ->
                    Option.map (fun a -> Bgp.Policy.Match_as_in_path a)
                      (decode_asn a)
                | None -> (
                    match param "nh=" with
                    | Some a ->
                        Option.map (fun a -> Bgp.Policy.Match_next_hop a)
                          (decode_asn a)
                    | None -> (
                        match param "len<=" with
                        | Some n ->
                            Option.map (fun n -> Bgp.Policy.Match_path_length_le n)
                              (int_of_string_opt n)
                        | None -> None)))))

let rec all_some = function
  | [] -> Some []
  | None :: _ -> None
  | Some x :: rest -> Option.map (fun xs -> x :: xs) (all_some rest)

let decode s =
  match decode_list s with
  | Some [ "exists" ] -> Some Exists
  | Some [ "min" ] -> Some Min_path_length
  | Some [ "union" ] -> Some Union
  | Some [ "shorter-of" ] -> Some Shorter_of
  | Some [ "first-nonempty" ] -> Some First_nonempty
  | Some ("best" :: steps) ->
      Option.map (fun steps -> Best steps) (all_some (List.map decode_step steps))
  | Some ("filter" :: conds) ->
      Option.map (fun conds -> Filter conds) (all_some (List.map decode_cond conds))
  | Some [ "not-through"; a ] ->
      Option.map (fun a -> Not_through a) (decode_asn a)
  | Some [ "has-community"; c ] ->
      Option.map (fun c -> Has_community c) (decode_community c)
  | Some [ "within-hops-of-min"; n ] ->
      Option.map (fun n -> Within_hops_of_min n) (int_of_string_opt n)
  | _ -> None

let pp ppf op =
  match op with
  | Not_through a -> Format.fprintf ppf "not-through(%a)" Bgp.Asn.pp a
  | Has_community (a, v) -> Format.fprintf ppf "has-community(%d:%d)" a v
  | Within_hops_of_min n -> Format.fprintf ppf "within-%d-of-min" n
  | _ -> Format.pp_print_string ppf (name op)
