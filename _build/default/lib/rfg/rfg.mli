(** Route-flow graphs (§2.1, §3.5).

    A bipartite DAG: {e variable} vertices hold sets of routes, {e operator}
    vertices compute.  "An edge (o, v) from an operator o to a variable v
    indicates that v is computed by o; an edge (v, o) indicates that v is an
    input to o" (§3.5).  Each variable is computed by at most one operator;
    operator inputs are ordered (some operators, like [Shorter_of], are not
    symmetric).

    Vertex identifiers are strings; {!Pvr_merkle.Bitstring.of_id} maps them
    to the prefix-free Merkle paths of §3.6. *)

type vertex_id = string

type vertex_kind =
  | Input of Pvr_bgp.Asn.t
      (** A variable fed by a neighbor's announcement (r_1..r_k in Fig. 1). *)
  | Internal  (** A variable computed inside the graph. *)
  | Output of Pvr_bgp.Asn.t
      (** A variable exported to a neighbor (r_o in Fig. 1). *)

type t

val empty : t

val add_var : t -> vertex_id -> vertex_kind -> t
(** @raise Invalid_argument on duplicate ids. *)

val add_op : t -> vertex_id -> Operator.t -> inputs:vertex_id list -> output:vertex_id -> t
(** Wire an operator: reads the [inputs] variables (in order), computes the
    [output] variable.  All the variables must exist already.
    @raise Invalid_argument on duplicate ids, missing variables, or if
    [output] already has a producer. *)

val add_composite :
  t -> vertex_id -> inner:t -> inputs:vertex_id list -> output:vertex_id -> t
(** A {e composite} operator (§4 "Structural privacy": "a composite operator
    whose internal structure is only revealed to authorized neighbors,
    analogous to ... Davidson et al.").  [inner] is a whole route-flow
    graph; its input variables bind positionally, in lexicographic id
    order, to the outer [inputs], and its single output variable feeds the
    outer [output].  Unauthorized viewers of the vertex learn only that it
    is a composite; {!Pvr} commits the internals in a nested tree.
    @raise Invalid_argument if the inner graph's input count differs from
    [inputs], or it does not have exactly one output variable. *)

val composite_of : t -> vertex_id -> t option
(** The inner graph of a composite operator vertex. *)

val is_operator_vertex : t -> vertex_id -> bool
(** Primitive or composite. *)

val var_ids : t -> vertex_id list
val op_ids : t -> vertex_id list
val vertex_ids : t -> vertex_id list

val kind_of_var : t -> vertex_id -> vertex_kind option
val operator_of : t -> vertex_id -> Operator.t option
val inputs_of_op : t -> vertex_id -> vertex_id list
val output_of_op : t -> vertex_id -> vertex_id option
val producer_of_var : t -> vertex_id -> vertex_id option
(** The operator computing a variable, if any. *)

val consumers_of_var : t -> vertex_id -> vertex_id list
(** Operators reading a variable. *)

val predecessors : t -> vertex_id -> vertex_id list
(** Graph predecessors of any vertex (vars of an op, producer op of a
    var). *)

val successors : t -> vertex_id -> vertex_id list

val input_vars : t -> (vertex_id * Pvr_bgp.Asn.t) list
val output_vars : t -> (vertex_id * Pvr_bgp.Asn.t) list

val topological_ops : t -> vertex_id list
(** Operator ids in dependency order.
    @raise Failure on a cyclic graph. *)

type valuation = Pvr_bgp.Route.t list Map.Make(String).t

val eval : t -> inputs:(vertex_id * Pvr_bgp.Route.t list) list -> valuation
(** Evaluate the whole graph: seed the input variables (unseeded inputs are
    empty), run operators in topological order, return every variable's
    value. *)

val value : valuation -> vertex_id -> Pvr_bgp.Route.t list

val pp : Format.formatter -> t -> unit
