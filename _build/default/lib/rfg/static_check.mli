(** Static verification of route-flow graphs against promises (§2.2, §4).

    "A network may be able to tell, given the rules to which it has access,
    whether particular promises made to it will be kept.  This is based
    purely on static inspection of the route-flow graph, tracing connections
    from input variables ... to output variables" (§2.2).

    §4 ("Minimum access") additionally asks whether "a) the visible
    route-flow graph implements a given promise and b) the access privileges
    granted by the network are sufficient to verify that promise".  Both
    checks are below; visibility is a plain predicate so callers can plug in
    the α of {!Pvr.Access_control}. *)

type issue =
  | Missing_vertex of Rfg.vertex_id
      (** The expected structure needs a vertex the graph does not have. *)
  | Invisible_vertex of Rfg.vertex_id
      (** The vertex exists but the verifier may not see it. *)
  | Wrong_operator of { vertex : Rfg.vertex_id; expected : string; found : string }
  | Wrong_wiring of { vertex : Rfg.vertex_id; detail : string }
  | No_output of Pvr_bgp.Asn.t

val pp_issue : Format.formatter -> issue -> unit

val implements :
  Rfg.t ->
  promise:Promise.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  neighbors:Pvr_bgp.Asn.t list ->
  issue list
(** Structural check that the graph computes the promise for the
    beneficiary: empty list = the graph implements the promise.  The check
    is sound for the promise shapes of §2 (it compares against
    {!Promise.reference_rfg} structure), not a general program analysis. *)

val verifiable_under :
  Rfg.t ->
  promise:Promise.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  neighbors:Pvr_bgp.Asn.t list ->
  visible:(viewer:Pvr_bgp.Asn.t -> Rfg.vertex_id -> bool) ->
  issue list
(** The §4 "minimum access" check: on top of {!implements}, every vertex
    that some participant must inspect at runtime has to be visible to that
    participant — the operator vertex to everyone involved, each input
    variable to its own neighbor, and the output to the beneficiary. *)
