module Bgp = Pvr_bgp
module SMap = Map.Make (String)

type vertex_id = string

type vertex_kind = Input of Bgp.Asn.t | Internal | Output of Bgp.Asn.t

type node_body = Prim of Operator.t | Composite of t

and op_node = { body : node_body; op_inputs : vertex_id list; op_output : vertex_id }

and t = {
  vars : vertex_kind SMap.t;
  ops : op_node SMap.t;
  producers : vertex_id SMap.t; (* var -> op computing it *)
}

let empty = { vars = SMap.empty; ops = SMap.empty; producers = SMap.empty }

let mem_vertex t id = SMap.mem id t.vars || SMap.mem id t.ops

let add_var t id kind =
  if mem_vertex t id then invalid_arg ("Rfg.add_var: duplicate id " ^ id);
  { t with vars = SMap.add id kind t.vars }

let add_op t id op ~inputs ~output =
  if mem_vertex t id then invalid_arg ("Rfg.add_op: duplicate id " ^ id);
  List.iter
    (fun v ->
      if not (SMap.mem v t.vars) then
        invalid_arg ("Rfg.add_op: unknown input variable " ^ v))
    inputs;
  if not (SMap.mem output t.vars) then
    invalid_arg ("Rfg.add_op: unknown output variable " ^ output);
  if SMap.mem output t.producers then
    invalid_arg ("Rfg.add_op: variable " ^ output ^ " already has a producer");
  (match Operator.arity op with
  | Some n when List.length inputs <> n ->
      invalid_arg "Rfg.add_op: operator arity mismatch"
  | _ -> ());
  {
    t with
    ops = SMap.add id { body = Prim op; op_inputs = inputs; op_output = output } t.ops;
    producers = SMap.add output id t.producers;
  }

let add_composite t id ~inner ~inputs ~output =
  if mem_vertex t id then invalid_arg ("Rfg.add_composite: duplicate id " ^ id);
  List.iter
    (fun v ->
      if not (SMap.mem v t.vars) then
        invalid_arg ("Rfg.add_composite: unknown input variable " ^ v))
    inputs;
  if not (SMap.mem output t.vars) then
    invalid_arg ("Rfg.add_composite: unknown output variable " ^ output);
  if SMap.mem output t.producers then
    invalid_arg
      ("Rfg.add_composite: variable " ^ output ^ " already has a producer");
  let inner_inputs =
    SMap.fold
      (fun vid kind acc ->
        match kind with Input _ -> vid :: acc | Internal | Output _ -> acc)
      inner.vars []
  in
  if List.length inner_inputs <> List.length inputs then
    invalid_arg "Rfg.add_composite: inner input arity mismatch";
  let inner_outputs =
    SMap.fold
      (fun vid kind acc ->
        match kind with Output _ -> vid :: acc | Input _ | Internal -> acc)
      inner.vars []
  in
  if List.length inner_outputs <> 1 then
    invalid_arg "Rfg.add_composite: inner graph needs exactly one output";
  {
    t with
    ops =
      SMap.add id
        { body = Composite inner; op_inputs = inputs; op_output = output }
        t.ops;
    producers = SMap.add output id t.producers;
  }

let var_ids t = List.map fst (SMap.bindings t.vars)
let op_ids t = List.map fst (SMap.bindings t.ops)
let vertex_ids t = var_ids t @ op_ids t

let kind_of_var t id = SMap.find_opt id t.vars

let operator_of t id =
  match SMap.find_opt id t.ops with
  | Some { body = Prim op; _ } -> Some op
  | Some { body = Composite _; _ } | None -> None

let composite_of t id =
  match SMap.find_opt id t.ops with
  | Some { body = Composite inner; _ } -> Some inner
  | Some { body = Prim _; _ } | None -> None

let is_operator_vertex t id = SMap.mem id t.ops

let inputs_of_op t id =
  match SMap.find_opt id t.ops with Some n -> n.op_inputs | None -> []

let output_of_op t id =
  Option.map (fun n -> n.op_output) (SMap.find_opt id t.ops)

let producer_of_var t id = SMap.find_opt id t.producers

let consumers_of_var t id =
  SMap.fold
    (fun op_id n acc -> if List.mem id n.op_inputs then op_id :: acc else acc)
    t.ops []
  |> List.rev

let predecessors t id =
  match SMap.find_opt id t.ops with
  | Some n -> n.op_inputs
  | None -> ( match producer_of_var t id with Some op -> [ op ] | None -> [])

let successors t id =
  match SMap.find_opt id t.ops with
  | Some n -> [ n.op_output ]
  | None -> consumers_of_var t id

let input_vars t =
  SMap.fold
    (fun id kind acc ->
      match kind with Input asn -> (id, asn) :: acc | _ -> acc)
    t.vars []
  |> List.rev

let output_vars t =
  SMap.fold
    (fun id kind acc ->
      match kind with Output asn -> (id, asn) :: acc | _ -> acc)
    t.vars []
  |> List.rev

(* Kahn's algorithm over operator nodes: an operator is ready when every
   input variable is either producer-less or its producer already ran. *)
let topological_ops t =
  let ready op_done id =
    let n = SMap.find id t.ops in
    List.for_all
      (fun v ->
        match producer_of_var t v with
        | None -> true
        | Some p -> List.mem p op_done)
      n.op_inputs
  in
  let rec go remaining op_done acc =
    if remaining = [] then List.rev acc
    else begin
      match List.partition (ready op_done) remaining with
      | [], _ -> failwith "Rfg.topological_ops: cycle in route-flow graph"
      | now, later ->
          go later (now @ op_done) (List.rev_append now acc)
    end
  in
  go (op_ids t) [] []

type valuation = Bgp.Route.t list SMap.t

let value valuation id =
  Option.value (SMap.find_opt id valuation) ~default:[]

let rec eval t ~inputs =
  let valuation = ref SMap.empty in
  SMap.iter
    (fun id _ -> valuation := SMap.add id [] !valuation)
    t.vars;
  List.iter
    (fun (id, routes) ->
      match kind_of_var t id with
      | Some (Input _) -> valuation := SMap.add id routes !valuation
      | Some _ -> invalid_arg ("Rfg.eval: " ^ id ^ " is not an input variable")
      | None -> invalid_arg ("Rfg.eval: unknown variable " ^ id))
    inputs;
  List.iter
    (fun op_id ->
      let n = SMap.find op_id t.ops in
      let in_values = List.map (fun v -> value !valuation v) n.op_inputs in
      let result =
        match n.body with
        | Prim op -> Operator.apply op in_values
        | Composite inner ->
            (* Bind outer input values positionally to the inner input
               variables in lexicographic order (the documented contract). *)
            let inner_inputs =
              List.filter
                (fun vid ->
                  match SMap.find_opt vid inner.vars with
                  | Some (Input _) -> true
                  | _ -> false)
                (List.map fst (SMap.bindings inner.vars))
            in
            let seeded = List.combine inner_inputs in_values in
            let inner_valuation = eval inner ~inputs:seeded in
            let out_id =
              SMap.fold
                (fun vid kind acc ->
                  match kind with Output _ -> Some vid | _ -> acc)
                inner.vars None
            in
            (match out_id with
            | Some vid -> value inner_valuation vid
            | None -> [])
      in
      valuation := SMap.add n.op_output result !valuation)
    (topological_ops t);
  !valuation

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  SMap.iter
    (fun id kind ->
      let k =
        match kind with
        | Input a -> "input from " ^ Bgp.Asn.to_string a
        | Internal -> "internal"
        | Output a -> "output to " ^ Bgp.Asn.to_string a
      in
      Format.fprintf ppf "var %s (%s)@," id k)
    t.vars;
  SMap.iter
    (fun id n ->
      let body =
        match n.body with
        | Prim op -> Format.asprintf "%a" Operator.pp op
        | Composite inner ->
            Printf.sprintf "composite[%d vertices]"
              (SMap.cardinal inner.vars + SMap.cardinal inner.ops)
      in
      Format.fprintf ppf "op %s: %s(%s) -> %s@," id body
        (String.concat ", " n.op_inputs)
        n.op_output)
    t.ops;
  Format.fprintf ppf "@]"
