lib/rfg/rfg.ml: Format List Map Operator Option Printf Pvr_bgp String
