lib/rfg/compiler.mli: Format Promise Pvr_bgp Rfg
