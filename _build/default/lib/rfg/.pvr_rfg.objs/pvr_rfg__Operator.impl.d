lib/rfg/operator.ml: Char Format List Option Printf Pvr_bgp Pvr_crypto String
