lib/rfg/promise.mli: Pvr_bgp Rfg
