lib/rfg/rfg.mli: Format Map Operator Pvr_bgp String
