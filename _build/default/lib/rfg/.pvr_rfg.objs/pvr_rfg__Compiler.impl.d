lib/rfg/compiler.ml: Buffer Format List Printf Promise Pvr_bgp String
