lib/rfg/static_check.ml: Format List Operator Option Promise Pvr_bgp Rfg String
