lib/rfg/static_check.mli: Format Promise Pvr_bgp Rfg
