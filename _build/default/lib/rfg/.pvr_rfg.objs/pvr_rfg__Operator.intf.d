lib/rfg/operator.mli: Format Pvr_bgp
