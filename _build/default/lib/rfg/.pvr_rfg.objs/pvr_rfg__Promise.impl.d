lib/rfg/promise.ml: List Operator Printf Pvr_bgp Rfg String
