module Bgp = Pvr_bgp

type config = {
  owner : Bgp.Asn.t;
  promises : (Bgp.Asn.t * Promise.t) list;
  imports : (Bgp.Asn.t * Bgp.Policy.t) list;
  exports : (Bgp.Asn.t * Bgp.Policy.t) list;
}

type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

(* ---- Lexer -------------------------------------------------------------- *)

type token = { text : string; line : int }

let tokenize src =
  let tokens = ref [] in
  let buf = Buffer.create 16 in
  let line = ref 1 in
  let flush_word () =
    if Buffer.length buf > 0 then begin
      tokens := { text = Buffer.contents buf; line = !line } :: !tokens;
      Buffer.clear buf
    end
  in
  let emit c =
    flush_word ();
    tokens := { text = String.make 1 c; line = !line } :: !tokens
  in
  let in_comment = ref false in
  String.iter
    (fun c ->
      match c with
      | '\n' ->
          flush_word ();
          in_comment := false;
          incr line
      | _ when !in_comment -> ()
      | '#' ->
          flush_word ();
          in_comment := true
      | ' ' | '\t' | '\r' -> flush_word ()
      | '{' | '}' | ';' -> emit c
      | _ -> Buffer.add_char buf c)
    src;
  flush_word ();
  List.rev !tokens

(* ---- Parser ------------------------------------------------------------- *)

exception Parse_error of error

let fail line message = raise (Parse_error { line; message })

type stream = { mutable toks : token list; mutable last_line : int }

let peek s = match s.toks with [] -> None | t :: _ -> Some t

let next s =
  match s.toks with
  | [] -> fail s.last_line "unexpected end of input"
  | t :: rest ->
      s.toks <- rest;
      s.last_line <- t.line;
      t

let expect s text =
  let t = next s in
  if t.text <> text then
    fail t.line (Printf.sprintf "expected %S, found %S" text t.text)

let accept s text =
  match peek s with
  | Some t when t.text = text ->
      ignore (next s);
      true
  | _ -> false

let parse_asn s =
  let t = next s in
  let n =
    if String.length t.text > 2 && String.sub t.text 0 2 = "AS" then
      int_of_string_opt (String.sub t.text 2 (String.length t.text - 2))
    else None
  in
  match n with
  | Some n when n >= 0 -> Bgp.Asn.of_int n
  | _ -> fail t.line (Printf.sprintf "expected an AS number, found %S" t.text)

let parse_int s =
  let t = next s in
  match int_of_string_opt t.text with
  | Some n -> n
  | None -> fail t.line (Printf.sprintf "expected a number, found %S" t.text)

let parse_prefix s =
  let t = next s in
  match Bgp.Prefix.of_string t.text with
  | p -> p
  | exception Invalid_argument _ ->
      fail t.line (Printf.sprintf "expected a prefix, found %S" t.text)

let parse_community s =
  let t = next s in
  match String.split_on_char ':' t.text with
  | [ a; v ] -> begin
      match (int_of_string_opt a, int_of_string_opt v) with
      | Some a, Some v -> (a, v)
      | _ -> fail t.line "expected a community like 65000:1"
    end
  | _ -> fail t.line "expected a community like 65000:1"

(* One or more AS numbers, up to (not consuming) a keyword/terminator. *)
let parse_asn_list s =
  let rec go acc =
    match peek s with
    | Some t
      when String.length t.text > 2
           && String.sub t.text 0 2 = "AS"
           && int_of_string_opt (String.sub t.text 2 (String.length t.text - 2))
              <> None ->
        go (parse_asn s :: acc)
    | _ -> List.rev acc
  in
  let asns = go [] in
  if asns = [] then fail s.last_line "expected at least one AS number";
  asns

let parse_promise_body s =
  let t = next s in
  match t.text with
  | "shortest" -> Promise.Shortest_route
  | "shortest-from" -> Promise.Shortest_from (parse_asn_list s)
  | "within-hops" -> Promise.Within_hops (parse_int s)
  | "no-longer-than-others" -> Promise.No_longer_than_others
  | "export-if-any" -> Promise.Export_if_any (parse_asn_list s)
  | "prefer" ->
      let fallback = parse_asn_list s in
      expect s "unless-shorter";
      let override = parse_asn s in
      Promise.Prefer_unless_shorter { fallback; override }
  | other -> fail t.line (Printf.sprintf "unknown promise %S" other)

let parse_cond s =
  let t = next s in
  match t.text with
  | "prefix" -> Bgp.Policy.Match_prefix_exact (parse_prefix s)
  | "prefix-in" -> Bgp.Policy.Match_prefix_in (parse_prefix s)
  | "community" -> Bgp.Policy.Match_community (parse_community s)
  | "path-has" -> Bgp.Policy.Match_as_in_path (parse_asn s)
  | "from" -> Bgp.Policy.Match_next_hop (parse_asn s)
  | "pathlen-le" -> Bgp.Policy.Match_path_length_le (parse_int s)
  | "any" -> Bgp.Policy.Match_any
  | other -> fail t.line (Printf.sprintf "unknown condition %S" other)

let is_verdict t = t = "accept" || t = "reject"

let parse_action s =
  let t = next s in
  match t.text with
  | "set-local-pref" -> Bgp.Policy.Set_local_pref (parse_int s)
  | "set-med" -> Bgp.Policy.Set_med (parse_int s)
  | "add-community" -> Bgp.Policy.Add_community (parse_community s)
  | "prepend" -> Bgp.Policy.Prepend (Bgp.Asn.of_int 0, parse_int s)
  | other -> fail t.line (Printf.sprintf "unknown action %S" other)

(* clause := ["if" cond ("and" cond)*] ["then" action*] verdict ";" *)
let parse_clause s ~owner =
  let matches =
    if accept s "if" then begin
      let rec go acc =
        let c = parse_cond s in
        if accept s "and" then go (c :: acc) else List.rev (c :: acc)
      in
      go []
    end
    else []
  in
  let actions =
    if accept s "then" then begin
      let rec go acc =
        match peek s with
        | Some t when (not (is_verdict t.text)) && t.text <> ";" ->
            go (parse_action s :: acc)
        | _ -> List.rev acc
      in
      go []
    end
    else []
  in
  (* Fill in the owner ASN for prepend actions. *)
  let actions =
    List.map
      (function
        | Bgp.Policy.Prepend (_, n) -> Bgp.Policy.Prepend (owner, n)
        | a -> a)
      actions
  in
  let t = next s in
  let verdict =
    match t.text with
    | "accept" -> Bgp.Policy.Accept
    | "reject" -> Bgp.Policy.Reject
    | other -> fail t.line (Printf.sprintf "expected accept/reject, found %S" other)
  in
  expect s ";";
  { Bgp.Policy.matches; actions; verdict }

let parse_clause_block s ~owner =
  expect s "{";
  let rec go acc =
    if accept s "}" then List.rev acc else go (parse_clause s ~owner :: acc)
  in
  go []

let parse_config s =
  expect s "policy";
  expect s "for";
  let owner = parse_asn s in
  expect s "{";
  let promises = ref [] and imports = ref [] and exports = ref [] in
  let rec items () =
    if accept s "}" then ()
    else begin
      let t = next s in
      (match t.text with
      | "promise" ->
          expect s "to";
          let beneficiary = parse_asn s in
          expect s "=";
          let p = parse_promise_body s in
          expect s ";";
          promises := (beneficiary, p) :: !promises
      | "import" ->
          expect s "from";
          let neighbor = parse_asn s in
          imports := (neighbor, parse_clause_block s ~owner) :: !imports
      | "export" ->
          expect s "to";
          let neighbor = parse_asn s in
          exports := (neighbor, parse_clause_block s ~owner) :: !exports
      | other -> fail t.line (Printf.sprintf "unexpected %S" other));
      items ()
    end
  in
  items ();
  (match peek s with
  | Some t -> fail t.line (Printf.sprintf "trailing input: %S" t.text)
  | None -> ());
  {
    owner;
    promises = List.rev !promises;
    imports = List.rev !imports;
    exports = List.rev !exports;
  }

let parse src =
  let s = { toks = tokenize src; last_line = 1 } in
  match parse_config s with
  | config -> Ok config
  | exception Parse_error e -> Error e

let compile config ~neighbors =
  List.map
    (fun (beneficiary, promise) ->
      (beneficiary, promise, Promise.reference_rfg promise ~beneficiary ~neighbors))
    config.promises

(* ---- Renderer ----------------------------------------------------------- *)

let render_promise = function
  | Promise.Shortest_route -> "shortest"
  | Promise.Shortest_from asns ->
      "shortest-from "
      ^ String.concat " " (List.map Bgp.Asn.to_string asns)
  | Promise.Within_hops n -> "within-hops " ^ string_of_int n
  | Promise.No_longer_than_others -> "no-longer-than-others"
  | Promise.Export_if_any asns ->
      "export-if-any "
      ^ String.concat " " (List.map Bgp.Asn.to_string asns)
  | Promise.Prefer_unless_shorter { fallback; override } ->
      "prefer "
      ^ String.concat " " (List.map Bgp.Asn.to_string fallback)
      ^ " unless-shorter "
      ^ Bgp.Asn.to_string override

let render_cond = function
  | Bgp.Policy.Match_prefix_exact p -> "prefix " ^ Bgp.Prefix.to_string p
  | Bgp.Policy.Match_prefix_in p -> "prefix-in " ^ Bgp.Prefix.to_string p
  | Bgp.Policy.Match_community (a, v) -> Printf.sprintf "community %d:%d" a v
  | Bgp.Policy.Match_as_in_path a -> "path-has " ^ Bgp.Asn.to_string a
  | Bgp.Policy.Match_next_hop a -> "from " ^ Bgp.Asn.to_string a
  | Bgp.Policy.Match_path_length_le n -> "pathlen-le " ^ string_of_int n
  | Bgp.Policy.Match_any -> "any"

let render_action = function
  | Bgp.Policy.Set_local_pref n -> "set-local-pref " ^ string_of_int n
  | Bgp.Policy.Set_med n -> "set-med " ^ string_of_int n
  | Bgp.Policy.Add_community (a, v) -> Printf.sprintf "add-community %d:%d" a v
  | Bgp.Policy.Prepend (_, n) -> "prepend " ^ string_of_int n

let render_clause (c : Bgp.Policy.clause) =
  let cond =
    match c.matches with
    | [] -> ""
    | ms -> "if " ^ String.concat " and " (List.map render_cond ms) ^ " "
  in
  let acts =
    match c.actions with
    | [] -> ""
    | acts -> "then " ^ String.concat " " (List.map render_action acts) ^ " "
  in
  let verdict =
    match c.verdict with Bgp.Policy.Accept -> "accept" | Bgp.Policy.Reject -> "reject"
  in
  Printf.sprintf "    %s%s%s;" cond acts verdict

let render config =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "policy for %s {\n" (Bgp.Asn.to_string config.owner));
  List.iter
    (fun (b, p) ->
      Buffer.add_string buf
        (Printf.sprintf "  promise to %s = %s;\n" (Bgp.Asn.to_string b)
           (render_promise p)))
    config.promises;
  List.iter
    (fun (n, policy) ->
      Buffer.add_string buf
        (Printf.sprintf "  import from %s {\n" (Bgp.Asn.to_string n));
      List.iter
        (fun c -> Buffer.add_string buf (render_clause c ^ "\n"))
        policy;
      Buffer.add_string buf "  }\n")
    config.imports;
  List.iter
    (fun (n, policy) ->
      Buffer.add_string buf
        (Printf.sprintf "  export to %s {\n" (Bgp.Asn.to_string n));
      List.iter
        (fun c -> Buffer.add_string buf (render_clause c ^ "\n"))
        policy;
      Buffer.add_string buf "  }\n")
    config.exports;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
