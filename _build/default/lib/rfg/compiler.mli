(** Policy-language front end (§4: "such a system should have language
    support for compiling a high-level policy description (or router
    configuration file) into a compact route-flow graph").

    The language mirrors a stripped-down router configuration:

    {v
    policy for AS1 {
      promise to AS100 = shortest-from AS10 AS11 AS12;
      promise to AS200 = prefer AS11 AS12 unless-shorter AS10;

      import from AS10 {
        if prefix-in 10.0.0.0/8 then set-local-pref 120 accept;
        reject;
      }
      export to AS100 {
        if community 65000:666 then reject;
        accept;
      }
    }
    v}

    Promise bodies: [shortest], [shortest-from ASn...], [within-hops n],
    [no-longer-than-others], [export-if-any ASn...],
    [prefer ASn... unless-shorter ASm].

    Clause conditions: [prefix p/l], [prefix-in p/l], [community a:v],
    [path-has ASn], [from ASn], [pathlen-le n], [any].
    Actions: [set-local-pref n], [set-med n], [add-community a:v],
    [prepend n].  Verdicts: [accept], [reject]. *)

type config = {
  owner : Pvr_bgp.Asn.t;
  promises : (Pvr_bgp.Asn.t * Promise.t) list;
  imports : (Pvr_bgp.Asn.t * Pvr_bgp.Policy.t) list;
  exports : (Pvr_bgp.Asn.t * Pvr_bgp.Policy.t) list;
}

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (config, error) result

val compile :
  config ->
  neighbors:Pvr_bgp.Asn.t list ->
  (Pvr_bgp.Asn.t * Promise.t * Rfg.t) list
(** One route-flow graph per promise (beneficiary, promise, graph), built
    with {!Promise.reference_rfg} over the declared neighbor set. *)

val render : config -> string
(** Pretty-print a config back to (re-parseable) source. *)
