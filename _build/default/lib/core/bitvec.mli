(** Bit-vector commitment strategies — the DESIGN.md §5 ablation.

    §3.3 commits each threshold bit b_1..b_k separately, so the published
    commitment grows linearly in k (32 bytes per bit) while each disclosure
    is a single constant-size opening.  The alternative is to hang the k
    per-bit commitments under one Merkle tree and publish only the root:
    the published size becomes constant, and each disclosure pays an extra
    ⌈log₂ k⌉ sibling digests.  Experiment E5's ablation measures both.

    Either way each bit keeps its own hiding nonce, so opening one bit
    reveals nothing about the others. *)

type strategy = Per_bit | Merkle_vector

val strategy_to_string : strategy -> string

type t
(** Prover-side state (bits, nonces, tree). *)

type published = string list
(** What A publishes in its signed commit message: k digests for [Per_bit],
    a single root for [Merkle_vector]. *)

type bit_proof
(** An opening of one bit, with its Merkle path under [Merkle_vector]. *)

val commit : Pvr_crypto.Drbg.t -> strategy -> bool list -> t * published

val published_bytes : published -> int

val open_bit : t -> int -> bit_proof
(** 1-based. @raise Invalid_argument if out of range. *)

val proof_bytes : bit_proof -> int

val verify_bit :
  strategy -> published -> k:int -> index:int -> bit_proof -> bool option
(** [Some b] if the proof validly opens bit [index] of the published
    commitment to [b]; [None] otherwise. *)
