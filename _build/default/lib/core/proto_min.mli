(** The minimum-operator protocol (§3.3 and Figure 1).

    A promises B to export the shortest route among those provided by
    N_1..N_k.  On top of the two existential conditions, condition 3: each
    providing N_i verifies that the exported route is not longer than its
    own.

    A computes k bits b_1..b_k with b_i = 1 iff at least one input route has
    path length ≤ i, commits to each bit separately, and the commitments
    are gossiped.  A then reveals
    - to each providing N_i: the opening of b_{|r_i|} (which must be 1 —
      "clearly, the chosen route cannot be longer than N_i's route");
    - to B: {e all} bit openings, plus the signed export with provenance.

    B checks (a) some bit set ⟹ a properly signed route arrived, (b) bit
    monotonicity, and — implied by §3.3 and necessary for minimality — (c)
    the exported route's length L satisfies b_L = 1 and b_i = 0 for every
    i < L.  A violation of (c) with b_i = 1 yields self-contained
    {!Evidence.Nonminimal_export} evidence; b_L = 0 yields
    {!Evidence.False_bit} with the provenance announcement as witness. *)

open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
  neighbor_disclosures : (Pvr_bgp.Asn.t * neighbor_disclosure) list;
  beneficiary_disclosure : beneficiary_disclosure;
}

val scheme : string
(** ["min"]. *)

val default_max_path_len : int
(** 32 — "Suppose the maximum AS-path length at A is k" (§3.3).  Real BGP
    paths essentially never exceed this. *)

val prove :
  ?max_path_len:int ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  inputs:Wire.announce Wire.signed list ->
  prover_output
(** Honest A.  Inputs whose path exceeds [max_path_len] are ignored (they
    could never win the minimum among admissible routes anyway, and the bit
    vector cannot express them). *)

val check_neighbor :
  Keyring.t ->
  me:Pvr_bgp.Asn.t ->
  my_announce:Wire.announce Wire.signed ->
  commit:Wire.commit Wire.signed ->
  disclosure:neighbor_disclosure option ->
  Evidence.t list
(** N_i: the disclosed opening must be for index |r_i| and show bit 1. *)

val check_beneficiary :
  Keyring.t ->
  me:Pvr_bgp.Asn.t ->
  commit:Wire.commit Wire.signed ->
  disclosure:beneficiary_disclosure ->
  Evidence.t list
