module Bgp = Pvr_bgp

(* Slot: one commitment is expected per (signer, epoch, prefix, scheme). *)
module Slot = struct
  type t = Bgp.Asn.t * Wire.epoch * string * string

  let compare = Stdlib.compare

  let of_commit (c : Wire.commit Wire.signed) =
    ( c.Wire.signer,
      c.Wire.payload.Wire.cmt_epoch,
      Bgp.Prefix.to_string c.Wire.payload.Wire.cmt_prefix,
      c.Wire.payload.Wire.cmt_scheme )
end

module Slot_map = Map.Make (Slot)

type t = {
  keyring : Keyring.t;
  mutable held : Wire.commit Wire.signed Slot_map.t Bgp.Asn.Map.t;
      (* per holder, per slot, the first commitment seen *)
}

let create keyring = { keyring; held = Bgp.Asn.Map.empty }

let holder_map t holder =
  Option.value (Bgp.Asn.Map.find_opt holder t.held) ~default:Slot_map.empty

let receive t ~holder commit =
  if not (Wire.verify t.keyring ~encode:Wire.encode_commit commit) then None
  else begin
    let slot = Slot.of_commit commit in
    let m = holder_map t holder in
    match Slot_map.find_opt slot m with
    | None ->
        t.held <- Bgp.Asn.Map.add holder (Slot_map.add slot commit m) t.held;
        None
    | Some existing ->
        if Wire.equal_commit existing commit then None
        else Some (Evidence.Equivocation { first = existing; second = commit })
  end

let exchange t x y =
  let mx = holder_map t x and my = holder_map t y in
  let evidence = ref [] in
  let merge_into holder theirs =
    Slot_map.iter
      (fun _slot commit ->
        match receive t ~holder commit with
        | Some e -> evidence := e :: !evidence
        | None -> ())
      theirs
  in
  merge_into x my;
  merge_into y mx;
  List.rev !evidence

let run_round t ~edges =
  List.concat_map (fun (x, y) -> exchange t x y) edges

let clique_edges members =
  let rec go = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ go rest
  in
  go members

let ring_edges members =
  match members with
  | [] | [ _ ] -> []
  | first :: _ ->
      let rec go = function
        | x :: (y :: _ as rest) -> (x, y) :: go rest
        | [ last ] -> [ (last, first) ]
        | [] -> []
      in
      go members

let view t ~holder ~signer ~epoch ~prefix ~scheme =
  Slot_map.find_opt
    (signer, epoch, Bgp.Prefix.to_string prefix, scheme)
    (holder_map t holder)
