module Bgp = Pvr_bgp
module C = Pvr_crypto
module BU = Pvr_crypto.Bytes_util
open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
  per_beneficiary : (Bgp.Asn.t * beneficiary_disclosure) list;
}

let scheme = "noshorter"

(* Commitment layout: element 0 is a header encoding the beneficiary order
   and k; elements 1.. are the bit digests, one k-bit block per beneficiary
   in header order.  Global (1-based over the digest region) index of bit i
   of block j (0-based) is j*k + i; its list position is 1 + j*k + i - 1. *)

let encode_header ~beneficiaries ~k =
  BU.encode_list
    (BU.be32 k :: List.map (fun a -> BU.be32 (Bgp.Asn.to_int a)) beneficiaries)

let decode_header s =
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (BU.read_be32 s pos, pos + 4)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) when count >= 1 ->
      let rec items n pos acc =
        if n = 0 then
          if pos = String.length s then Some (List.rev acc) else None
        else
          match read_u32 pos with
          | None -> None
          | Some (len, pos) ->
              if len <> 4 || pos + len > String.length s then None
              else items (n - 1) (pos + len) (BU.read_be32 s pos :: acc)
      in
      Option.map
        (fun vals ->
          match vals with
          | k :: asns -> (k, List.map Bgp.Asn.of_int asns)
          | [] -> assert false)
        (items count pos [])
  | Some _ -> None

let header_of_commit (commit : Wire.commit Wire.signed) =
  match commit.Wire.payload.Wire.cmt_commitments with
  | header :: _ -> decode_header header
  | [] -> None

let block_of ~beneficiaries me =
  let rec go j = function
    | [] -> None
    | x :: rest -> if Bgp.Asn.equal x me then Some j else go (j + 1) rest
  in
  go 0 beneficiaries

let vector_of ~beneficiaries ~k ~me i =
  match block_of ~beneficiaries me with
  | Some j -> (j * k) + i
  | None -> invalid_arg "Proto_no_shorter.vector_of: unknown beneficiary"

(* Opening check against digest region position [global] (1-based). *)
let bit_at (commit : Wire.commit Wire.signed) ~global opening =
  let commitments = commit.Wire.payload.Wire.cmt_commitments in
  if global < 1 || global + 1 > List.length commitments then None
  else begin
    let c = C.Commitment.of_raw (List.nth commitments global) in
    if C.Commitment.verify c opening then C.Commitment.opening_bit opening
    else None
  end

let prove ?(max_path_len = Proto_min.default_max_path_len) rng keyring ~prover
    ~beneficiaries ~epoch ~prefix ~exports =
  let k = max_path_len in
  let exports =
    List.filter
      (fun ((_ : Bgp.Asn.t), ann) ->
        valid_input keyring ~prover ~epoch ~prefix ann
        && Bgp.Route.path_length ann.Wire.payload.Wire.ann_route <= k)
      exports
  in
  let len_for m =
    Option.map
      (fun (ann : Wire.announce Wire.signed) ->
        Bgp.Route.path_length ann.Wire.payload.Wire.ann_route)
      (List.assoc_opt m exports)
  in
  (* One k-bit block per beneficiary. *)
  let blocks =
    List.map
      (fun m ->
        let len = len_for m in
        List.init k (fun i ->
            match len with Some l -> l <= i + 1 | None -> false))
      beneficiaries
  in
  let committed =
    List.map (List.map (C.Commitment.commit_bit rng)) blocks
  in
  let digests =
    List.concat_map
      (List.map (fun ((c : C.Commitment.commitment), _) -> (c :> string)))
      committed
  in
  let commit =
    Wire.sign keyring ~as_:prover ~encode:Wire.encode_commit
      {
        Wire.cmt_epoch = epoch;
        cmt_prefix = prefix;
        cmt_scheme = scheme;
        cmt_commitments = encode_header ~beneficiaries ~k :: digests;
      }
  in
  let opening_at global =
    let j = (global - 1) / k and i = (global - 1) mod k in
    snd (List.nth (List.nth committed j) i)
  in
  let per_beneficiary =
    List.map
      (fun m ->
        let my_block =
          match block_of ~beneficiaries m with Some j -> j | None -> 0
        in
        let own =
          List.init k (fun i ->
              let global = (my_block * k) + i + 1 in
              (global, opening_at global))
        in
        let cross =
          match len_for m with
          | Some l when l >= 2 ->
              List.concat
                (List.mapi
                   (fun j other ->
                     if Bgp.Asn.equal other m then []
                     else begin
                       let global = (j * k) + (l - 1) in
                       [ (global, opening_at global) ]
                     end)
                   beneficiaries)
          | _ -> []
        in
        let export =
          Option.map
            (fun (chosen : Wire.announce Wire.signed) ->
              Wire.sign keyring ~as_:prover ~encode:Wire.encode_export
                {
                  Wire.exp_epoch = epoch;
                  exp_to = m;
                  exp_route = chosen.Wire.payload.Wire.ann_route;
                  exp_provenance = Some chosen;
                })
            (List.assoc_opt m exports)
        in
        (m, { bd_openings = own @ cross; bd_export = export }))
      beneficiaries
  in
  { commit; per_beneficiary }

let check_beneficiary ?(max_path_len = Proto_min.default_max_path_len) keyring
    ~me ~beneficiaries ~commit ~disclosure =
  let claim () =
    [
      Evidence.Missing_export_claim
        { commit; openings = disclosure.bd_openings; claimant = me };
    ]
  in
  match header_of_commit commit with
  | None -> claim ()
  | Some (k, committed_order) ->
      if
        k <> max_path_len
        || committed_order <> beneficiaries
        || List.length commit.Wire.payload.Wire.cmt_commitments
           <> 1 + (k * List.length beneficiaries)
      then claim ()
      else begin
        match block_of ~beneficiaries me with
        | None -> claim ()
        | Some my_block -> begin
            let my_bit i =
              let global = (my_block * k) + i in
              match List.assoc_opt global disclosure.bd_openings with
              | None -> None
              | Some o -> Option.map (fun b -> (b, o)) (bit_at commit ~global o)
            in
            match disclosure.bd_export with
            | None -> begin
                (* Nothing exported to me: my whole vector must open to 0. *)
                let issues = ref [] in
                for i = 1 to k do
                  match my_bit i with
                  | Some (true, _) | None ->
                      if !issues = [] then issues := claim ()
                  | Some (false, _) -> ()
                done;
                !issues
              end
            | Some export -> begin
                match
                  check_export_provenance keyring ~commit ~beneficiary:me
                    export
                with
                | Error e -> [ e ]
                | Ok _ -> begin
                    let l =
                      Bgp.Route.path_length export.Wire.payload.Wire.exp_route
                    in
                    if l > k then [ Evidence.Bad_provenance { export } ]
                    else begin
                      let issues = ref [] in
                      (* 1. Own vector must encode exactly length l. *)
                      for i = 1 to k do
                        match my_bit i with
                        | None -> if !issues = [] then issues := claim ()
                        | Some (b, o) ->
                            if b <> (l <= i) then
                              issues :=
                                Evidence.Own_vector_mismatch
                                  {
                                    commit;
                                    my_export = export;
                                    bit_index = i;
                                    opening = o;
                                  }
                                :: !issues
                      done;
                      (* 2. No other beneficiary's bit b_{l-1} may be 1. *)
                      if l >= 2 then
                        List.iteri
                          (fun j other ->
                            if not (Bgp.Asn.equal other me) then begin
                              let global = (j * k) + (l - 1) in
                              match
                                List.assoc_opt global disclosure.bd_openings
                              with
                              | None -> if !issues = [] then issues := claim ()
                              | Some o -> begin
                                  match bit_at commit ~global o with
                                  | Some true ->
                                      issues :=
                                        Evidence.Cross_shorter_export
                                          {
                                            commit;
                                            my_export = export;
                                            other_block = j;
                                            opening = o;
                                          }
                                        :: !issues
                                  | Some false -> ()
                                  | None ->
                                      if !issues = [] then issues := claim ()
                                end
                            end)
                          beneficiaries;
                      List.rev !issues
                    end
                  end
              end
          end
      end
