(** The generalized PVR mechanism over route-flow graphs (§3.5–3.7).

    A commits to its whole route-flow graph in a prefix-free Merkle hash
    tree ({!Pvr_merkle.Prefix_tree}): one leaf per vertex x, at the path
    {!Pvr_merkle.Bitstring.of_id}[ x].  Following §3.7, the committed leaf
    value is the triple
    I(x) = (c(preds), c(succs), c(payload)) — three independent
    commitments, so "the three types of information can be revealed
    independently, depending on the authorization of the querying
    neighbor".

    The payload of a variable vertex is its set of routes; the payload of an
    operator vertex is "the operator type and the evidence" — where the
    evidence embeds the §3.2/§3.3 bit mechanism per operator: an
    existential bit for [Exists], threshold bits b_1..b_k for
    [Min_path_length] (and friends), and a bit vector per input branch for
    [Shorter_of].  The bit openings let an authorized neighbor check an
    operator's output against its committed evidence {e without seeing the
    input routes}.

    Disclosure is driven by an {!Access_control.t}: {!disclose} assembles,
    for one viewer, exactly the components α authorizes, each
    authenticated against the signed root. *)

module Bgp = Pvr_bgp
module C = Pvr_crypto
module Rfg = Pvr_rfg.Rfg

val scheme : string
(** ["graph"]. *)

type component_opening = { raw : string; opening : C.Commitment.opening }
(** An opened component: [raw] is the committed byte string (which the
    opening re-proves), already decoded from the opening value. *)

type disclosure = {
  vertex : Rfg.vertex_id;
  leaf : string;                       (** the committed I(x) triple *)
  proof : Pvr_merkle.Prefix_tree.proof;
  preds : component_opening option;    (** encoded predecessor id list *)
  succs : component_opening option;    (** encoded successor id list *)
  payload : component_opening option;
  bit_openings : (int * C.Commitment.opening) list;
      (** for operator vertices: openings of the evidence bits this viewer
          is entitled to (all bits for the beneficiary, the bit at the
          viewer's own route length for a provider) *)
}

type prover_state

val prove :
  ?max_path_len:int ->
  C.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  rfg:Rfg.t ->
  inputs:Wire.announce Wire.signed list ->
  prover_state
(** Honest A: evaluate the graph on the (valid) inputs, build all vertex
    commitments and the tree, sign the root. *)

val commit_message : prover_state -> Wire.commit Wire.signed
val root : prover_state -> string
val valuation : prover_state -> Rfg.valuation
val tree_cardinal : prover_state -> int

val exported : prover_state -> beneficiary:Bgp.Asn.t -> Wire.export Wire.signed option
(** The signed export for a beneficiary output variable of the graph (with
    provenance when the exported route matches an input). *)

val disclose :
  ?role:[ `Beneficiary | `Provider of int ] ->
  prover_state ->
  alpha:Access_control.t ->
  viewer:Bgp.Asn.t ->
  disclosure list
(** Everything α lets the viewer see, authenticated.  [role] controls the
    evidence bits (which are revealed per protocol role, not per α):
    beneficiaries receive all bits of each visible operator (§3.3 "A also
    reveals all the bits b_i to B"); [`Provider len] receives only the bit
    at its own route length.  Default: beneficiary. *)

(** {2 Verification} *)

val check_disclosure_integrity :
  root:string -> disclosure -> bool
(** Structural validity: Merkle proof against the root and every opened
    component against its digest in the leaf triple.  Any viewer runs this
    on everything it receives before semantic checks. *)

val check_provider :
  Keyring.t ->
  me:Bgp.Asn.t ->
  my_announce:Wire.announce Wire.signed ->
  commit:Wire.commit Wire.signed ->
  disclosures:disclosure list ->
  Evidence.t list
(** A providing neighbor N_i: its input variable must be committed with
    exactly the route it announced, and every operator consuming that
    variable must have its evidence bit at |r_i| set. *)

val check_beneficiary :
  Keyring.t ->
  me:Bgp.Asn.t ->
  commit:Wire.commit Wire.signed ->
  disclosures:disclosure list ->
  export:Wire.export Wire.signed option ->
  Evidence.t list
(** The beneficiary B: navigate from its output variable to the producing
    operator, check the output value against the operator type and its
    committed bit evidence, and check export/provenance consistency. *)

val decode_id_list : string -> Rfg.vertex_id list option
(** Decode a preds/succs component payload (exposed for tests/judge). *)

(** {2 Composite operators (§4 structural privacy)}

    A composite vertex ({!Pvr_rfg.Rfg.add_composite}) commits its internals
    in a {e nested} prefix tree: the vertex's payload reveals only the inner
    root, so an unauthorized viewer learns nothing about the inner
    structure — "a composite operator whose internal structure is only
    revealed to authorized neighbors".  Inner vertex ids are namespaced
    ["composite/inner"], and α is consulted on the namespaced ids. *)

val composite_inner_root : prover_state -> composite:Rfg.vertex_id -> string option
(** The nested tree's root, if the vertex is a composite. *)

val disclose_composite :
  prover_state ->
  alpha:Access_control.t ->
  viewer:Bgp.Asn.t ->
  composite:Rfg.vertex_id ->
  (string * disclosure list) option
(** [(inner_root, inner disclosures the viewer may see)]. *)

val check_composite :
  outer_root:string ->
  composite_disclosure:disclosure ->
  inner_root:string ->
  inner:disclosure list ->
  bool
(** Authenticate a composite's internals: the composite vertex must verify
    against the outer root with a payload committing to [inner_root], and
    every inner disclosure must verify against [inner_root]. *)

val of_evidence_disclosure : Evidence.graph_disclosure -> disclosure
(** Convert back from the self-contained form evidence carries. *)

val replay_offence :
  Keyring.t ->
  commit:Wire.commit Wire.signed ->
  disclosures:Evidence.graph_disclosure list ->
  Evidence.graph_offence ->
  bool
(** Third-party replay of a {!Evidence.Graph_violation}: re-verify every
    disclosure against the committed root and re-derive the offence from
    scratch.  [true] = the offence is confirmed (the {!Judge} then returns
    [Guilty]); [false] = the evidence does not support the accusation. *)
