module Bgp = Pvr_bgp
module BU = Pvr_crypto.Bytes_util

type attestation = {
  att_prefix : Bgp.Prefix.t;
  att_path : Bgp.Asn.t list;
  att_to : Bgp.Asn.t;
}

type chain = attestation Wire.signed list

let encode_attestation a =
  BU.encode_list
    [
      "sbgp-attest";
      Bgp.Prefix.to_string a.att_prefix;
      BU.encode_list (List.map (fun x -> BU.be32 (Bgp.Asn.to_int x)) a.att_path);
      BU.be32 (Bgp.Asn.to_int a.att_to);
    ]

let sign_attestation keyring ~as_ a =
  Wire.sign keyring ~as_ ~encode:encode_attestation a

let originate keyring ~origin ~prefix ~to_ =
  [ sign_attestation keyring ~as_:origin
      { att_prefix = prefix; att_path = [ origin ]; att_to = to_ } ]

(* Validate one link: [att] was signed by the head of its own path. *)
let link_valid keyring (att : attestation Wire.signed) =
  Wire.verify keyring ~encode:encode_attestation att
  &&
  match att.Wire.payload.att_path with
  | signer :: _ -> Bgp.Asn.equal signer att.Wire.signer
  | [] -> false

let rec chain_valid keyring ~expected_path ~to_ = function
  | [] -> false
  | [ last ] ->
      (* The origin's attestation: single-AS path. *)
      link_valid keyring last
      && last.Wire.payload.att_path = expected_path
      && List.length expected_path = 1
      && Bgp.Asn.equal last.Wire.payload.att_to to_
  | att :: (next :: _ as rest) ->
      link_valid keyring att
      && att.Wire.payload.att_path = expected_path
      && Bgp.Asn.equal att.Wire.payload.att_to to_
      (* The previous hop addressed its attestation to this attester. *)
      && Bgp.Asn.equal next.Wire.payload.att_to att.Wire.signer
      && (match expected_path with
         | _ :: tail ->
             chain_valid keyring ~expected_path:tail ~to_:att.Wire.signer rest
         | [] -> false)

let verify keyring ~prefix ~path ~to_ chain =
  List.length chain = List.length path
  && List.for_all
       (fun (a : attestation Wire.signed) ->
         Bgp.Prefix.equal a.Wire.payload.att_prefix prefix)
       chain
  && chain_valid keyring ~expected_path:path ~to_ chain

let extend keyring ~me ~to_ chain =
  match chain with
  | [] -> Error "cannot extend an empty chain"
  | (prev : attestation Wire.signed) :: _ ->
      let prefix = prev.Wire.payload.att_prefix in
      if not (Bgp.Asn.equal prev.Wire.payload.att_to me) then
        Error "chain was not addressed to the extending AS"
      else if
        not
          (chain_valid keyring ~expected_path:prev.Wire.payload.att_path
             ~to_:me chain)
      then Error "received chain does not verify"
      else begin
        let new_path = me :: prev.Wire.payload.att_path in
        Ok
          (sign_attestation keyring ~as_:me
             { att_prefix = prefix; att_path = new_path; att_to = to_ }
          :: chain)
      end

let chain_route keyring (route : Bgp.Route.t) ~to_ =
  (* Fold over the path origin-outward, at each step addressing the
     attestation to the next AS outward (or [to_] at the very front). *)
  let rev = List.rev route.Bgp.Route.as_path in
  (* rev = origin first *)
  let recipients =
    (* recipient of hop i (origin-first order) is hop i+1, except the last
       hop whose recipient is [to_]. *)
    match rev with
    | [] -> invalid_arg "Sbgp.chain_route: empty path"
    | _ :: rest -> rest @ [ to_ ]
  in
  let _, chain =
    List.fold_left2
      (fun (path_so_far, acc) hop recipient ->
        let path = hop :: path_so_far in
        let att =
          sign_attestation keyring ~as_:hop
            {
              att_prefix = route.Bgp.Route.prefix;
              att_path = path;
              att_to = recipient;
            }
        in
        (path, att :: acc))
      ([], []) rev recipients
  in
  chain
