(** Byzantine prover behaviours (§3's threat model: "an unknown subset of
    the networks is Byzantine and can behave arbitrarily").

    Each behaviour corrupts one aspect of the minimum-operator protocol run;
    experiment E8 injects each into a Figure-1 topology and records which
    neighbor detects it, what evidence is produced, and the {!Judge}'s
    verdict.  {!expected_detectors} documents the intended detection
    surface, which the test suite asserts. *)

type behaviour =
  | Honest
  | Export_nonminimal
      (** bits committed honestly, but a longest (not shortest) input is
          exported — B detects via {!Evidence.Nonminimal_export} *)
  | False_bits
      (** bits claim the shortest input is the exported (long) one — only
          the providers with shorter routes can detect ({!Evidence.False_bit}) *)
  | Equivocate
      (** different commitments to different neighbors — uncovered by
          gossip ({!Evidence.Equivocation}) *)
  | Suppress_export
      (** commitments and provider disclosures are honest, but nothing is
          exported to B — B raises {!Evidence.Missing_export_claim}; the
          adversary stonewalls the judge *)
  | Refuse_disclosure
      (** one providing neighbor receives no opening —
          {!Evidence.Missing_disclosure_claim} *)
  | Forge_provenance
      (** exports a fabricated route with a provenance announcement whose
          signature cannot verify — {!Evidence.Bad_provenance} *)

val all : behaviour list
val to_string : behaviour -> string

type min_run = {
  commit_for : Pvr_bgp.Asn.t -> Wire.commit Wire.signed;
      (** per-recipient commitment (differs only under [Equivocate]) *)
  neighbor_disclosures :
    (Pvr_bgp.Asn.t * Proto_common.neighbor_disclosure option) list;
      (** [None] = the adversary withheld the opening *)
  beneficiary_disclosure : Proto_common.beneficiary_disclosure;
  respond : accused:Pvr_bgp.Asn.t -> Judge.challenge -> Judge.response;
      (** how this prover answers a judge *)
}

val run_min :
  behaviour ->
  ?max_path_len:int ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  inputs:Wire.announce Wire.signed list ->
  min_run
(** Run the prover side of the §3.3 protocol under the given behaviour.
    Requires at least one valid input for the misbehaving variants to have
    something to corrupt. *)

type detector = Beneficiary | Provider of Pvr_bgp.Asn.t | Gossip

val expected_detectors :
  behaviour -> inputs:(Pvr_bgp.Asn.t * int) list -> detector list
(** Who must detect the misbehaviour, given the providing neighbors and
    their route lengths (empty for [Honest]). *)
