module Bgp = Pvr_bgp
module Rfg = Pvr_rfg.Rfg
module Promise = Pvr_rfg.Promise

type component = Preds | Succs | Payload

module Key = struct
  type t = Bgp.Asn.t option * string * component
  (* viewer (None = everyone), vertex, component *)

  let compare = Stdlib.compare
end

module KSet = Set.Make (Key)

type t = KSet.t

let deny_all = KSet.empty

let components = [ Preds; Succs; Payload ]

let allow_component t ~viewer vertex comp =
  KSet.add (Some viewer, vertex, comp) t

let allow t ~viewer vertex =
  List.fold_left (fun t c -> allow_component t ~viewer vertex c) t components

let allow_everyone t vertex =
  List.fold_left (fun t c -> KSet.add (None, vertex, c) t) t components

let permits t ~viewer vertex comp =
  KSet.mem (Some viewer, vertex, comp) t || KSet.mem (None, vertex, comp) t

let permits_vertex t ~viewer vertex =
  List.for_all (fun c -> permits t ~viewer vertex c) components

let figure1 ~beneficiary ~providers =
  let t = deny_all in
  let t =
    List.fold_left
      (fun t n -> allow t ~viewer:n (Promise.input_var n))
      t providers
  in
  let t = allow t ~viewer:beneficiary (Promise.output_var beneficiary) in
  allow_everyone t "op:min"

let for_promise promise ~beneficiary ~neighbors =
  let involved, ops =
    match promise with
    | Promise.Shortest_route -> (neighbors, [ "op:min" ])
    | Promise.Shortest_from subset -> (subset, [ "op:min" ])
    | Promise.Within_hops _ -> (neighbors, [ "op:within" ])
    | Promise.No_longer_than_others -> (neighbors, [ "op:min" ])
    | Promise.Export_if_any subset -> (subset, [ "op:exists" ])
    | Promise.Prefer_unless_shorter { fallback; override } ->
        (override :: fallback, [ "op:min"; "op:choose"; "v:fallback-min" ])
  in
  let t = deny_all in
  let t =
    List.fold_left
      (fun t n -> allow t ~viewer:n (Promise.input_var n))
      t involved
  in
  let t = allow t ~viewer:beneficiary (Promise.output_var beneficiary) in
  List.fold_left allow_everyone t ops
