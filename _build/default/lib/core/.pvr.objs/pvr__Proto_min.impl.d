lib/core/proto_min.ml: Evidence Int List Option Proto_common Pvr_bgp Pvr_crypto Wire
