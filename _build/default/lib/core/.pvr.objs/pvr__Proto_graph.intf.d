lib/core/proto_graph.mli: Access_control Evidence Keyring Pvr_bgp Pvr_crypto Pvr_merkle Pvr_rfg Wire
