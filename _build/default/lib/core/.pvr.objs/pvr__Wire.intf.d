lib/core/wire.mli: Keyring Pvr_bgp Pvr_crypto
