lib/core/runner.ml: Access_control Adversary Evidence Gossip Judge List Option Proto_graph Proto_min Pvr_bgp Pvr_crypto Pvr_rfg String Wire
