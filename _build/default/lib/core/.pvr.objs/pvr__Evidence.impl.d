lib/core/evidence.ml: Printf Pvr_bgp Pvr_crypto Pvr_merkle Wire
