lib/core/gossip.ml: Evidence Keyring List Map Option Pvr_bgp Stdlib Wire
