lib/core/bitvec.ml: Array List Pvr_crypto Pvr_merkle String
