lib/core/sbgp.ml: List Pvr_bgp Pvr_crypto Wire
