lib/core/gossip.mli: Evidence Keyring Pvr_bgp Wire
