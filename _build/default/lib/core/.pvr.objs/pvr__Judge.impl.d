lib/core/judge.ml: Evidence Format Int List Option Proto_common Proto_graph Proto_no_shorter Pvr_bgp Pvr_crypto String Wire
