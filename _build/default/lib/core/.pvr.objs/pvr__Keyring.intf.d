lib/core/keyring.mli: Pvr_bgp Pvr_crypto
