lib/core/proto_common.mli: Evidence Keyring Pvr_bgp Pvr_crypto Wire
