lib/core/access_control.mli: Pvr_bgp Pvr_rfg
