lib/core/keyring.ml: List Pvr_bgp Pvr_crypto
