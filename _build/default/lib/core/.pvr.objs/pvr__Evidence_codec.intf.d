lib/core/evidence_codec.mli: Evidence
