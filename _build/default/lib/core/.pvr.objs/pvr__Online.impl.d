lib/core/online.ml: Adversary Gossip Judge Keyring List Option Proto_common Proto_min Pvr_bgp Pvr_crypto Runner String Wire
