lib/core/runner.mli: Adversary Evidence Judge Keyring Pvr_bgp Pvr_crypto Pvr_rfg Wire
