lib/core/adversary.ml: Judge Keyring List Option Proto_common Proto_min Pvr_bgp Pvr_crypto Wire
