lib/core/proto_exists.ml: Array Evidence Keyring List Printf Proto_common Pvr_bgp Pvr_crypto Wire
