lib/core/proto_no_shorter.ml: Evidence List Option Proto_common Proto_min Pvr_bgp Pvr_crypto String Wire
