lib/core/proto_common.ml: Evidence List Pvr_bgp Pvr_crypto Wire
