lib/core/proto_exists.mli: Evidence Keyring Proto_common Pvr_bgp Pvr_crypto Wire
