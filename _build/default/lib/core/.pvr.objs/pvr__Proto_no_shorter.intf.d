lib/core/proto_no_shorter.mli: Evidence Keyring Proto_common Pvr_bgp Pvr_crypto Wire
