lib/core/judge.mli: Evidence Format Keyring Pvr_bgp Pvr_crypto Wire
