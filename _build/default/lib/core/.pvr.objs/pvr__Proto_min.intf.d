lib/core/proto_min.mli: Evidence Keyring Proto_common Pvr_bgp Pvr_crypto Wire
