lib/core/online.mli: Keyring Pvr_bgp Pvr_crypto Runner Wire
