lib/core/sbgp.mli: Keyring Pvr_bgp Wire
