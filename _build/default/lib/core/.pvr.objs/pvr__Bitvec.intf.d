lib/core/bitvec.mli: Pvr_crypto
