lib/core/leakage.mli: Format Pvr_bgp
