lib/core/proto_graph.ml: Access_control Array Evidence Keyring List Option Printf Proto_common Pvr_bgp Pvr_crypto Pvr_merkle Pvr_rfg String Wire
