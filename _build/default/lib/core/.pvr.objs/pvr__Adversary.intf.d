lib/core/adversary.mli: Judge Keyring Proto_common Pvr_bgp Pvr_crypto Wire
