lib/core/evidence.mli: Pvr_bgp Pvr_crypto Pvr_merkle Wire
