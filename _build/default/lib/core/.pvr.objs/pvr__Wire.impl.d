lib/core/wire.ml: Keyring List Option Pvr_bgp Pvr_crypto String
