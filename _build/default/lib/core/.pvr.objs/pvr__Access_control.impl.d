lib/core/access_control.ml: List Pvr_bgp Pvr_rfg Set Stdlib
