lib/core/leakage.ml: Format List Pvr_bgp
