lib/core/evidence_codec.ml: Evidence List Option Pvr_bgp Pvr_crypto Pvr_merkle String Wire
