module Bgp = Pvr_bgp
module C = Pvr_crypto
open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
  neighbor_disclosures : (Bgp.Asn.t * neighbor_disclosure) list;
  beneficiary_disclosure : beneficiary_disclosure;
}

let scheme = "exists"

let prove rng keyring ~prover ~beneficiary ~epoch ~prefix ~inputs =
  let inputs =
    List.filter (valid_input keyring ~prover ~epoch ~prefix) inputs
  in
  let b = inputs <> [] in
  let c, opening = C.Commitment.commit_bit rng b in
  let commit =
    Wire.sign keyring ~as_:prover ~encode:Wire.encode_commit
      {
        Wire.cmt_epoch = epoch;
        cmt_prefix = prefix;
        cmt_scheme = scheme;
        cmt_commitments = [ (c :> string) ];
      }
  in
  let neighbor_disclosures =
    List.map
      (fun (ann : Wire.announce Wire.signed) ->
        (ann.Wire.signer, { nd_index = 1; nd_opening = opening }))
      inputs
  in
  let export =
    match inputs with
    | [] -> None
    | chosen :: _ ->
        Some
          (Wire.sign keyring ~as_:prover ~encode:Wire.encode_export
             {
               Wire.exp_epoch = epoch;
               exp_to = beneficiary;
               exp_route = chosen.Wire.payload.Wire.ann_route;
               exp_provenance = Some chosen;
             })
  in
  {
    commit;
    neighbor_disclosures;
    beneficiary_disclosure =
      { bd_openings = [ (1, opening) ]; bd_export = export };
  }

let check_neighbor _keyring ~me ~my_announce ~commit ~disclosure =
  let missing =
    Evidence.Missing_disclosure_claim
      { commit; announce = my_announce; claimant = me }
  in
  match disclosure with
  | None -> [ missing ]
  | Some { nd_index; nd_opening } -> begin
      match opening_bit_at commit ~index:nd_index nd_opening with
      | None -> [ missing ] (* a garbage opening is as good as none *)
      | Some true -> []
      | Some false ->
          [
            Evidence.False_bit
              {
                commit;
                index = nd_index;
                opening = nd_opening;
                witness = my_announce;
              };
          ]
    end

let check_beneficiary keyring ~me ~commit ~disclosure =
  let claim_missing () =
    [
      Evidence.Missing_export_claim
        { commit; openings = disclosure.bd_openings; claimant = me };
    ]
  in
  match disclosure.bd_openings with
  | [ (1, opening) ] -> begin
      match opening_bit_at commit ~index:1 opening with
      | None -> claim_missing ()
      | Some bit -> begin
          match (bit, disclosure.bd_export) with
          | false, None -> []
          | false, Some export -> begin
              (* A committed "no inputs" yet exported: if the export itself
                 is sound this contradicts the commitment; if not, the
                 provenance is the offence. *)
              match check_export_provenance keyring ~commit ~beneficiary:me export with
              | Ok _ ->
                  [
                    Evidence.Unsupported_export
                      { commit; export; openings = [ (1, opening) ] };
                  ]
              | Error e -> [ e ]
            end
          | true, None -> claim_missing ()
          | true, Some export -> begin
              match check_export_provenance keyring ~commit ~beneficiary:me export with
              | Ok _ -> []
              | Error e -> [ e ]
            end
        end
    end
  | _ -> claim_missing ()

let ring_statement ~epoch ~prefix =
  Printf.sprintf "pvr-ring:a route to %s exists in epoch %d"
    (Bgp.Prefix.to_string prefix)
    epoch

let ring_of keyring ring = Array.of_list (List.map (Keyring.public_key keyring) ring)

let index_of ring signer =
  let rec go i = function
    | [] -> invalid_arg "Proto_exists.ring_announce: signer not in ring"
    | x :: rest -> if Bgp.Asn.equal x signer then i else go (i + 1) rest
  in
  go 0 ring

let ring_announce rng keyring ~ring ~signer ~epoch ~prefix =
  let pubs = ring_of keyring ring in
  let idx = index_of ring signer in
  C.Ring_signature.sign rng ~ring:pubs ~signer:idx
    ~key:(Keyring.private_key keyring signer)
    (ring_statement ~epoch ~prefix)

let ring_check keyring ~ring ~epoch ~prefix signature =
  C.Ring_signature.verify ~ring:(ring_of keyring ring)
    ~msg:(ring_statement ~epoch ~prefix)
    signature
