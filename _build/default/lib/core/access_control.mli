(** Access control policies α (§2.2).

    "Let V be the set of vertices in the route-flow graph ... and let N be
    the set of participating networks.  A function
    α : N × V → {TRUE, FALSE} expresses which networks are allowed to see
    which parts of the graph."

    §3.7 refines vertex visibility into three independently-disclosable
    components: structural predecessors, structural successors, and the
    payload (route value or operator type). *)

type component = Preds | Succs | Payload

type t

val deny_all : t

val allow : t -> viewer:Pvr_bgp.Asn.t -> Pvr_rfg.Rfg.vertex_id -> t
(** Grant a viewer all three components of a vertex. *)

val allow_component :
  t -> viewer:Pvr_bgp.Asn.t -> Pvr_rfg.Rfg.vertex_id -> component -> t

val allow_everyone : t -> Pvr_rfg.Rfg.vertex_id -> t
(** Grant every network all components of a vertex (the paper's
    "α(n, min) = TRUE for all networks n"). *)

val permits :
  t -> viewer:Pvr_bgp.Asn.t -> Pvr_rfg.Rfg.vertex_id -> component -> bool

val permits_vertex : t -> viewer:Pvr_bgp.Asn.t -> Pvr_rfg.Rfg.vertex_id -> bool
(** All three components allowed (or the vertex is allowed to everyone). *)

val figure1 :
  beneficiary:Pvr_bgp.Asn.t -> providers:Pvr_bgp.Asn.t list -> t
(** The §3 example policy: α(N_i, r_i) = α(B, r_o) = TRUE,
    α(n, min) = TRUE for all n, FALSE otherwise — using the
    {!Pvr_rfg.Promise} vertex naming (["r:ASi"], ["out:ASb"], ["op:min"]). *)

val for_promise :
  Pvr_rfg.Promise.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  neighbors:Pvr_bgp.Asn.t list ->
  t
(** The minimal α under which the given promise is verifiable (§4 "minimum
    access"): every involved neighbor sees its own input variable and the
    top-level operator(s); the beneficiary sees the output and the
    operators. *)
