(** A protocol for §2's promise 4: "The route you get is no longer than what
    I tell anybody else."

    The paper lists this promise but sketches no mechanism for it; this
    module extends the §3.3 bit technique across {e beneficiaries} instead
    of inputs.  For every neighbor m it exports to, A commits to a threshold
    bit vector b^m_1..b^m_k with b^m_i = 1 iff the route exported to m has
    path length ≤ i (all-zero = nothing exported to m).  All the vectors
    ride in one signed, gossiped commit message, ordered by the public
    neighbor list.

    A beneficiary B that received a route of length L verifies:
    + its own vector opens consistently (b^B_L = 1, b^B_{L-1} = 0 — its
      vector must encode exactly L);
    + for every other neighbor m, the single bit b^m_{L-1} opens to 0 —
      nobody was told a strictly shorter route.

    Confidentiality: B learns, about each other export, only "not shorter
    than mine" — exactly the promise, nothing more.  The disclosed bit is
    implied by the promise + B's own route, so the {!Leakage} closure counts
    zero excess facts.

    Detection: if A exports to some m a route shorter than B's and commits
    truthfully, B sees b^m_{L-1} = 1 (self-contained
    {!Evidence.Nonminimal_export}-style proof, reusing [False_bit] with the
    export as witness is not possible here, so we add a dedicated check);
    if A lies in m's vector, then m — running the same protocol — finds its
    own vector inconsistent with the route it received. *)

open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
      (** scheme ["noshorter"]; commitments = the concatenation of one k-bit
          vector per neighbor, in [beneficiaries] order *)
  per_beneficiary : (Pvr_bgp.Asn.t * beneficiary_disclosure) list;
      (** for each beneficiary: its own full vector opened, the cross bits
          of the others at the right index, and its signed export *)
}

val scheme : string
(** ["noshorter"]. *)

val prove :
  ?max_path_len:int ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  beneficiaries:Pvr_bgp.Asn.t list ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  exports:(Pvr_bgp.Asn.t * Wire.announce Wire.signed) list ->
  prover_output
(** [exports] maps each beneficiary to the input route A chose for it (the
    provenance announcement); beneficiaries without an entry get nothing.
    The published neighbor order is [beneficiaries]. *)

val vector_of : beneficiaries:Pvr_bgp.Asn.t list -> k:int -> me:Pvr_bgp.Asn.t -> int -> int
(** [vector_of ~beneficiaries ~k ~me i] is the global commitment index
    (1-based) of bit i in [me]'s vector — exposed for tests and evidence
    checking. *)

val header_of_commit :
  Wire.commit Wire.signed -> (int * Pvr_bgp.Asn.t list) option
(** Decode the (k, beneficiary order) header from a ["noshorter"] commit —
    used by the {!Judge} to replay evidence. *)

val bit_at :
  Wire.commit Wire.signed ->
  global:int ->
  Pvr_crypto.Commitment.opening ->
  bool option
(** Check an opening against digest-region position [global] (1-based, past
    the header). *)

val check_beneficiary :
  ?max_path_len:int ->
  Keyring.t ->
  me:Pvr_bgp.Asn.t ->
  beneficiaries:Pvr_bgp.Asn.t list ->
  commit:Wire.commit Wire.signed ->
  disclosure:beneficiary_disclosure ->
  Evidence.t list
(** The two checks above.  Cross-vector violations surface as
    {!Evidence.Non_monotonic_bits}-style self-contained evidence
    ([False_bit] with the beneficiary's own provenance as witness for its
    own vector, [Nonminimal_export] carrying the offending cross bit). *)
