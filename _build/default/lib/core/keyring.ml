module Bgp = Pvr_bgp
module C = Pvr_crypto

type t = {
  rng : C.Drbg.t;
  bits : int;
  mutable keys : C.Rsa.private_key Bgp.Asn.Map.t;
}

let add_key t asn =
  if Bgp.Asn.Map.mem asn t.keys then
    invalid_arg ("Keyring: duplicate key for " ^ Bgp.Asn.to_string asn);
  let key = C.Rsa.generate t.rng ~bits:t.bits in
  t.keys <- Bgp.Asn.Map.add asn key t.keys

let create ?(bits = 1024) rng members =
  let t = { rng; bits; keys = Bgp.Asn.Map.empty } in
  List.iter (add_key t) members;
  t

let add t asn =
  add_key t asn;
  t

let private_key t asn =
  match Bgp.Asn.Map.find_opt asn t.keys with
  | Some k -> k
  | None -> raise Not_found

let public_key t asn = (private_key t asn).C.Rsa.pub

let members t = List.map fst (Bgp.Asn.Map.bindings t.keys)
