(** S-BGP-style route attestations (Kent, Lynn, Seo 2000).

    The paper builds on S-BGP for its baseline integrity: "Secure variants
    of BGP, such as S-BGP, have been proposed as mechanisms for ISPs to
    check that a routing announcement does correspond to the claimed path
    and destination" — PVR then adds verification of the {e decision}
    process on top.  This module supplies that baseline: a chain of
    attestations, one per AS on the path, each signing the prefix, the path
    so far, and the neighbor the announcement is being passed to, so a
    received route of path [v_n .. v_1 origin] can be validated end to
    end.

    The single-hop provenance inside {!Wire.export} is the degenerate chain
    of length one; {!Proto_common.check_export_provenance} can be hardened
    with {!verify} where full chains are available. *)

module Bgp = Pvr_bgp

type attestation = {
  att_prefix : Bgp.Prefix.t;
  att_path : Bgp.Asn.t list;
      (** the path as it leaves the attester: attester first, origin last *)
  att_to : Bgp.Asn.t;  (** the neighbor being given the route *)
}

type chain = attestation Wire.signed list
(** Origin's attestation last, the latest hop's first — same orientation as
    {!Bgp.Route.t.as_path}. *)

val encode_attestation : attestation -> string

val originate :
  Keyring.t -> origin:Bgp.Asn.t -> prefix:Bgp.Prefix.t -> to_:Bgp.Asn.t -> chain
(** The origin's initial attestation: path [\[origin\]]. *)

val extend :
  Keyring.t -> me:Bgp.Asn.t -> to_:Bgp.Asn.t -> chain -> (chain, string) result
(** [me] received the chain, prepends itself, and attests towards [to_].
    Fails (with a reason) if the existing chain does not verify as having
    been addressed to [me]. *)

val verify :
  Keyring.t -> prefix:Bgp.Prefix.t -> path:Bgp.Asn.t list -> to_:Bgp.Asn.t ->
  chain -> bool
(** Does the chain prove that [path] (announcer first) for [prefix] was
    legitimately propagated hop by hop and finally addressed to [to_]?
    Checks every signature, the path telescoping (each attester's path is
    its suffix of [path]), and every hop's recipient being the next
    attester. *)

val chain_route : Keyring.t -> Bgp.Route.t -> to_:Bgp.Asn.t -> chain
(** Build the full chain for a route whose every path AS is in the keyring
    (testing/simulation helper: in reality each AS signs its own hop). *)
