(** Byte-level serialization of {!Evidence.t}.

    Evidence must "convince a third party" (§2.3), which means it has to
    survive transport to a judge that shares nothing with the accuser but
    the keyring.  [encode] produces a self-contained byte string; [decode]
    parses it back (unverified — {!Judge.evaluate} re-checks everything
    from scratch, so a forged or corrupted blob can at worst be
    [Rejected]). *)

val encode : Evidence.t -> string

val decode : string -> Evidence.t option
(** [None] on any malformed input; never raises. *)

val to_hex : Evidence.t -> string
(** Hex convenience for logs and the CLI. *)

val of_hex : string -> Evidence.t option
