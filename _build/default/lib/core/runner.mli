(** End-to-end verification rounds on the Figure-1 scenario.

    One round: providers sign announcements → the (possibly Byzantine)
    prover A commits, disclosing per §3.3 → neighbors gossip A's
    commitment → every party runs its checks → all raised evidence is
    taken to the {!Judge}, with A answering challenges according to its
    behaviour.  Experiment E8 sweeps this over behaviours and topologies;
    the test suite asserts the §2.3 properties on the reports. *)

module Bgp = Pvr_bgp

type report = {
  raised : (Adversary.detector * Evidence.t) list;
      (** evidence, tagged by the party that produced it *)
  judged : (Adversary.detector * Evidence.t * Judge.verdict) list;
  detected : bool;     (** at least one piece of evidence was raised *)
  convicted : bool;    (** at least one piece judged [Guilty] *)
  exonerated : bool;   (** some accusation was disproved by A *)
  messages : int;      (** protocol messages exchanged in the round *)
  commit_bytes : int;  (** size of A's commitment message(s) *)
}

val min_round :
  ?gossip:[ `Clique | `Ring | `None ] ->
  ?max_path_len:int ->
  Adversary.behaviour ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  report
(** Run one §3.3 round.  [routes] are the provider announcements (neighbor,
    route as it arrives at A).  Gossip topology defaults to the full
    clique. *)

val announce_of_route :
  Keyring.t ->
  provider:Bgp.Asn.t ->
  prover:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  Bgp.Route.t ->
  Wire.announce Wire.signed
(** Helper shared with the graph runner and the examples. *)

val graph_round :
  ?max_path_len:int ->
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Bgp.Asn.t ->
  beneficiary:Bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Bgp.Prefix.t ->
  promise:Pvr_rfg.Promise.t ->
  routes:(Bgp.Asn.t * Bgp.Route.t) list ->
  report
(** Run one honest generalized round (§3.5–3.7): build the reference
    route-flow graph for [promise], commit, disclose under the promise's
    minimal α, and run every party's checks.  Used by E3. *)
