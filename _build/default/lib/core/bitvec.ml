module C = Pvr_crypto
module Merkle = Pvr_merkle.Merkle_tree

type strategy = Per_bit | Merkle_vector

let strategy_to_string = function
  | Per_bit -> "per-bit"
  | Merkle_vector -> "merkle-vector"

type t = {
  strategy : strategy;
  openings : C.Commitment.opening array;
  digests : string array;
  tree : Merkle.t option; (* Merkle_vector only *)
}

type published = string list

type bit_proof = {
  bp_opening : C.Commitment.opening;
  bp_path : Merkle.proof option;
}

let commit rng strategy bits =
  let committed = List.map (C.Commitment.commit_bit rng) bits in
  let digests =
    Array.of_list
      (List.map (fun ((c : C.Commitment.commitment), _) -> (c :> string)) committed)
  in
  let openings = Array.of_list (List.map snd committed) in
  match strategy with
  | Per_bit ->
      ({ strategy; openings; digests; tree = None }, Array.to_list digests)
  | Merkle_vector ->
      let tree = Merkle.build (Array.to_list digests) in
      ( { strategy; openings; digests; tree = Some tree },
        [ Merkle.root tree ] )

let published_bytes p = List.fold_left (fun acc s -> acc + String.length s) 0 p

let open_bit t index =
  if index < 1 || index > Array.length t.openings then
    invalid_arg "Bitvec.open_bit: index out of range";
  let bp_opening = t.openings.(index - 1) in
  match t.tree with
  | None -> { bp_opening; bp_path = None }
  | Some tree ->
      (* The Merkle leaf is the bit's commitment digest; the verifier
         recomputes it from the opening. *)
      { bp_opening; bp_path = Some (Merkle.prove tree (index - 1)) }

let proof_bytes proof =
  let opening_bytes =
    String.length proof.bp_opening.C.Commitment.value
    + String.length proof.bp_opening.C.Commitment.nonce
  in
  opening_bytes
  +
  match proof.bp_path with
  | None -> 0
  | Some p -> String.length (Merkle.encode_proof p)

let verify_bit strategy published ~k ~index proof =
  if index < 1 || index > k then None
  else begin
    let digest_of_opening () =
      (C.Commitment.commit_with_nonce
         ~nonce:proof.bp_opening.C.Commitment.nonce
         proof.bp_opening.C.Commitment.value
        :> string)
    in
    match (strategy, published, proof.bp_path) with
    | Per_bit, digests, None ->
        if List.length digests <> k then None
        else begin
          let c = List.nth digests (index - 1) in
          if
            String.length c = 32
            && C.Commitment.verify (C.Commitment.of_raw c) proof.bp_opening
          then C.Commitment.opening_bit proof.bp_opening
          else None
        end
    | Merkle_vector, [ root ], Some path ->
        if
          path.Merkle.index = index - 1
          && Merkle.verify ~root ~leaf:(digest_of_opening ()) path
        then C.Commitment.opening_bit proof.bp_opening
        else None
    | _ -> None
  end
