module Bgp = Pvr_bgp

type fact =
  | Knows_route of { provider : Bgp.Asn.t; route : Bgp.Route.t }
  | Knows_min_length of int
  | Knows_bit of { index : int; value : bool }
  | Knows_route_count_positive

let pp_fact ppf = function
  | Knows_route { provider; route } ->
      Format.fprintf ppf "route of %a: %a" Bgp.Asn.pp provider Bgp.Route.pp
        route
  | Knows_min_length l -> Format.fprintf ppf "min input length = %d" l
  | Knows_bit { index; value } ->
      Format.fprintf ppf "bit b_%d = %b" index value
  | Knows_route_count_positive -> Format.fprintf ppf "at least one input"

type view = fact list

let plain_bgp_beneficiary ~exported =
  match exported with
  | None -> []
  | Some r ->
      (* The route B receives is itself an input of A (pre-prepend), and
         the kept promise implies it is the minimum. *)
      [
        Knows_route
          { provider = r.Bgp.Route.next_hop; route = r };
        Knows_min_length (Bgp.Route.path_length r);
        Knows_route_count_positive;
      ]

let plain_bgp_provider ~me ~my_route =
  [
    Knows_route { provider = me; route = my_route };
    Knows_route_count_positive;
  ]

let pvr_min_beneficiary ~k ~openings ~exported =
  ignore k;
  plain_bgp_beneficiary ~exported
  @ List.map (fun (index, value) -> Knows_bit { index; value }) openings

let pvr_min_provider ~me ~my_route ~revealed_bit =
  plain_bgp_provider ~me ~my_route
  @
  match revealed_bit with
  | Some (index, value) -> [ Knows_bit { index; value } ]
  | None -> []

let netreview_neighbor ~inputs =
  let routes =
    List.map (fun (provider, route) -> Knows_route { provider; route }) inputs
  in
  let min_len =
    List.fold_left
      (fun acc (_, r) -> min acc (Bgp.Route.path_length r))
      max_int inputs
  in
  if inputs = [] then []
  else routes @ [ Knows_min_length min_len; Knows_route_count_positive ]

(* Closure rules:
   - any baseline fact is derivable;
   - Knows_min_length L ⟹ Knows_bit(i, L <= i) for every i;
   - Knows_route (own or learned) of length L ⟹ Knows_bit(i, true) for
     i >= L (some input is at most L hops) and Knows_route_count_positive;
   - Knows_min_length ⟹ Knows_route_count_positive. *)
let derivable ~baseline fact =
  List.mem fact baseline
  ||
  let known_min =
    List.find_map
      (function Knows_min_length l -> Some l | _ -> None)
      baseline
  in
  let known_route_lengths =
    List.filter_map
      (function
        | Knows_route { route; _ } -> Some (Bgp.Route.path_length route)
        | _ -> None)
      baseline
  in
  match fact with
  | Knows_bit { index; value } -> begin
      match known_min with
      | Some l -> value = (l <= index)
      | None ->
          (* A set bit follows from any known route short enough. *)
          value && List.exists (fun l -> l <= index) known_route_lengths
    end
  | Knows_route_count_positive ->
      known_min <> None || known_route_lengths <> []
  | Knows_min_length _ | Knows_route _ -> false

let excess ~baseline ~observed =
  List.filter (fun f -> not (derivable ~baseline f)) observed

let excess_count ~baseline ~observed =
  List.length (excess ~baseline ~observed)
