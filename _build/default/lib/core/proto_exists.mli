(** The existential-operator protocol (§3.2).

    A promises B to export a route whenever at least one of N_1..N_k
    provides one.  The promise decomposes into two independently-verifiable
    conditions:

    + B verifies that any exported route was provided to A by some N_i
      (signed announcements / provenance);
    + each providing N_i verifies that A exported {e something}: A commits
      to a bit b ("I received at least one route") as c = H(b ‖ p), the
      neighbors gossip about c, and A opens the commitment to each provider
      (bit must be 1) and to B (b = 1 ⟺ a signed route arrives).

    Neither the N_i nor B learn anything beyond plain BGP: the N_i see only
    the bit (which must be 1 for them anyway), and B sees the chosen route
    (which BGP already shows it) plus b.

    The ring-signature variant at the end implements the paper's link-state
    remark: the provenance proves {e some} ring member provided a route,
    without identifying which. *)

open Proto_common

type prover_output = {
  commit : Wire.commit Wire.signed;
  neighbor_disclosures : (Pvr_bgp.Asn.t * neighbor_disclosure) list;
      (** one per providing neighbor *)
  beneficiary_disclosure : beneficiary_disclosure;
}

val scheme : string
(** ["exists"]. *)

val prove :
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  prover:Pvr_bgp.Asn.t ->
  beneficiary:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  inputs:Wire.announce Wire.signed list ->
  prover_output
(** Honest A: commit to b, export the first valid input (if any) with
    provenance, open the bit to every provider and to B.  Invalid inputs
    (bad signature, wrong epoch/prefix/recipient) are ignored. *)

val check_neighbor :
  Keyring.t ->
  me:Pvr_bgp.Asn.t ->
  my_announce:Wire.announce Wire.signed ->
  commit:Wire.commit Wire.signed ->
  disclosure:neighbor_disclosure option ->
  Evidence.t list
(** N_i's verification (condition 2): having provided a route, N_i must
    receive a valid opening of c showing b = 1.  [commit] is the (already
    gossip-checked) commitment. *)

val check_beneficiary :
  Keyring.t ->
  me:Pvr_bgp.Asn.t ->
  commit:Wire.commit Wire.signed ->
  disclosure:beneficiary_disclosure ->
  Evidence.t list
(** B's verification (condition 1 + bit consistency). *)

(** {2 Link-state variant (ring signatures)} *)

val ring_statement : epoch:Wire.epoch -> prefix:Pvr_bgp.Prefix.t -> string
(** The statement "a route to [prefix] exists in epoch [epoch]". *)

val ring_announce :
  Pvr_crypto.Drbg.t ->
  Keyring.t ->
  ring:Pvr_bgp.Asn.t list ->
  signer:Pvr_bgp.Asn.t ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  Pvr_crypto.Ring_signature.t
(** A provider signs the existence statement anonymously within the ring. *)

val ring_check :
  Keyring.t ->
  ring:Pvr_bgp.Asn.t list ->
  epoch:Wire.epoch ->
  prefix:Pvr_bgp.Prefix.t ->
  Pvr_crypto.Ring_signature.t ->
  bool
(** B's check: some ring member signed the statement. *)
