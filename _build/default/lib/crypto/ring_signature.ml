module B = Bigint

type t = { glue : string; xs : B.t array; domain_bytes : int }

(* ---- Keyed permutation E_k over fixed-width byte strings -------------- *)
(* 4-round Feistel (Luby–Rackoff) with HMAC-SHA-256 round functions,
   expanded to the half-width with ChaCha20.  A 4-round Feistel with strong
   round functions is a strong pseudorandom permutation. *)

let round_function ~key ~round ~width half =
  let seed = Hmac.mac ~key (Bytes_util.be32 round ^ half) in
  let nonce = String.sub (Sha256.digest ("rf-nonce" ^ Bytes_util.be32 round)) 0 12 in
  Chacha20.encrypt ~key:seed ~nonce (String.make width '\x00')

let feistel ~key ~decrypt ~width_l ~width_r s =
  let l = ref (String.sub s 0 width_l)
  and r = ref (String.sub s width_l width_r) in
  let rounds = [ 0; 1; 2; 3 ] in
  let rounds = if decrypt then List.rev rounds else rounds in
  List.iter
    (fun i ->
      (* Even rounds modify R from L; odd rounds modify L from R.  Widths may
         differ by a byte, so alternate on fixed roles instead of swapping. *)
      if i mod 2 = 0 then
        r := Bytes_util.xor !r (round_function ~key ~round:i ~width:width_r !l)
      else
        l := Bytes_util.xor !l (round_function ~key ~round:i ~width:width_l !r))
    rounds;
  !l ^ !r

let permute ~key ~width s =
  assert (String.length s = width);
  let width_l = width / 2 in
  feistel ~key ~decrypt:false ~width_l ~width_r:(width - width_l) s

let permute_inv ~key ~width s =
  assert (String.length s = width);
  let width_l = width / 2 in
  feistel ~key ~decrypt:true ~width_l ~width_r:(width - width_l) s

(* ---- Extended RSA permutation over the common domain ------------------ *)

let domain_bound bytes = B.shift_left B.one (8 * bytes)

(* g_i(m): split m = q*n + r; apply RSA to r if the whole block stays below
   2^b, else identity (RST §3.1). *)
let g_apply pub ~bound m =
  let q, r = B.divmod m pub.Rsa.n in
  let block_top = B.mul (B.add_int q 1) pub.Rsa.n in
  if B.compare block_top bound <= 0 then
    B.add (B.mul q pub.Rsa.n) (Rsa.raw_apply_public pub r)
  else m

let g_invert key ~bound m =
  let pub = key.Rsa.pub in
  let q, r = B.divmod m pub.Rsa.n in
  let block_top = B.mul (B.add_int q 1) pub.Rsa.n in
  if B.compare block_top bound <= 0 then
    B.add (B.mul q pub.Rsa.n) (Rsa.raw_apply_private key r)
  else m

(* ---- The ring equation ------------------------------------------------ *)

let message_key msg = Sha256.digest ("rst-ring-key:" ^ msg)

let common_domain_bytes ring =
  let max_bytes =
    Array.fold_left (fun acc pk -> max acc (Rsa.key_size pk)) 0 ring
  in
  max_bytes + 20 (* 160 extra bits per RST so the identity branch is rare *)

let to_block ~width v = B.to_bytes_be ~pad_to:width v
let of_block s = B.of_bytes_be s

let sign rng ~ring ~signer ~key msg =
  let r = Array.length ring in
  if r = 0 then invalid_arg "Ring_signature.sign: empty ring";
  if signer < 0 || signer >= r then
    invalid_arg "Ring_signature.sign: signer index out of range";
  if not (B.equal ring.(signer).Rsa.n key.Rsa.pub.Rsa.n) then
    invalid_arg "Ring_signature.sign: key does not match ring slot";
  let width = common_domain_bytes ring in
  let bound = domain_bound width in
  let k = message_key msg in
  let glue = Drbg.generate rng width in
  let xs = Array.make r B.zero in
  let ys = Array.make r "" in
  for i = 0 to r - 1 do
    if i <> signer then begin
      let x = B.random_below rng bound in
      xs.(i) <- x;
      ys.(i) <- to_block ~width (g_apply ring.(i) ~bound x)
    end
  done;
  (* Forward pass: z_0 = glue, z_{i+1} = E(z_i xor y_i), up to z_signer. *)
  let z_lo = ref glue in
  for i = 0 to signer - 1 do
    z_lo := permute ~key:k ~width (Bytes_util.xor !z_lo ys.(i))
  done;
  (* Backward pass: z_r = glue, z_i = D(z_{i+1}) xor y_i, down to
     z_{signer+1}. *)
  let z_hi = ref glue in
  for i = r - 1 downto signer + 1 do
    z_hi := Bytes_util.xor (permute_inv ~key:k ~width !z_hi) ys.(i)
  done;
  (* Solve z_{s+1} = E(z_s xor y_s) for y_s. *)
  let y_s = Bytes_util.xor (permute_inv ~key:k ~width !z_hi) !z_lo in
  xs.(signer) <- g_invert key ~bound (of_block y_s);
  { glue; xs; domain_bytes = width }

let verify ~ring ~msg t =
  let r = Array.length ring in
  Array.length t.xs = r
  && t.domain_bytes = common_domain_bytes ring
  && String.length t.glue = t.domain_bytes
  &&
  let width = t.domain_bytes in
  let bound = domain_bound width in
  let k = message_key msg in
  let ok = Array.for_all (fun x -> B.compare x bound < 0) t.xs in
  ok
  &&
  let z = ref t.glue in
  for i = 0 to r - 1 do
    let y = to_block ~width (g_apply ring.(i) ~bound t.xs.(i)) in
    z := permute ~key:k ~width (Bytes_util.xor !z y)
  done;
  Bytes_util.equal_ct !z t.glue

let ring_size t = Array.length t.xs

let encode t =
  Bytes_util.encode_list
    (Bytes_util.be32 t.domain_bytes :: t.glue
    :: Array.to_list (Array.map B.to_bytes_be t.xs))

let decode s =
  (* Inverse of [encode]; returns None on any malformed input. *)
  let read_u32 pos =
    if pos + 4 > String.length s then None
    else Some (Bytes_util.read_be32 s pos, pos + 4)
  in
  let read_item pos =
    match read_u32 pos with
    | None -> None
    | Some (len, pos) ->
        if len < 0 || pos + len > String.length s then None
        else Some (String.sub s pos len, pos + len)
  in
  match read_u32 0 with
  | None -> None
  | Some (count, pos) ->
      if count < 2 then None
      else begin
        let rec items n pos acc =
          if n = 0 then
            if pos = String.length s then Some (List.rev acc) else None
          else
            match read_item pos with
            | None -> None
            | Some (item, pos) -> items (n - 1) pos (item :: acc)
        in
        match items count pos [] with
        | Some (domain :: glue :: xs) when String.length domain = 4 ->
            let domain_bytes = Bytes_util.read_be32 domain 0 in
            if String.length glue <> domain_bytes then None
            else
              Some
                {
                  glue;
                  xs = Array.of_list (List.map B.of_bytes_be xs);
                  domain_bytes;
                }
        | _ -> None
      end
