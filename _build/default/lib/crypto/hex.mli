(** Hexadecimal encoding of byte strings. *)

val encode : string -> string
(** Lowercase hex, two characters per input byte. *)

val decode : string -> string
(** Inverse of {!encode}; accepts upper- and lowercase digits.
    @raise Invalid_argument on odd length or non-hex characters. *)

val pp : Format.formatter -> string -> unit
(** Prints the hex encoding of the argument. *)
