let digits = "0123456789abcdef"

let encode s =
  String.init (2 * String.length s) (fun i ->
      let b = Char.code s.[i / 2] in
      digits.[if i mod 2 = 0 then b lsr 4 else b land 0xf])

let nibble c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg "Hex.decode: not a hex digit"

let decode s =
  if String.length s mod 2 <> 0 then invalid_arg "Hex.decode: odd length";
  String.init (String.length s / 2) (fun i ->
      Char.chr ((nibble s.[2 * i] lsl 4) lor nibble s.[(2 * i) + 1]))

let pp ppf s = Format.pp_print_string ppf (encode s)
