let mask32 = 0xFFFFFFFF

let rotl x n = ((x lsl n) lor (x lsr (32 - n))) land mask32

let quarter_round st a b c d =
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 16;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 12;
  st.(a) <- (st.(a) + st.(b)) land mask32;
  st.(d) <- rotl (st.(d) lxor st.(a)) 8;
  st.(c) <- (st.(c) + st.(d)) land mask32;
  st.(b) <- rotl (st.(b) lxor st.(c)) 7

let block ~key ~counter ~nonce =
  if String.length key <> 32 then invalid_arg "Chacha20: key must be 32 bytes";
  if String.length nonce <> 12 then
    invalid_arg "Chacha20: nonce must be 12 bytes";
  let st = Array.make 16 0 in
  st.(0) <- 0x61707865;
  st.(1) <- 0x3320646e;
  st.(2) <- 0x79622d32;
  st.(3) <- 0x6b206574;
  for i = 0 to 7 do
    st.(4 + i) <- Bytes_util.read_le32 key (4 * i)
  done;
  st.(12) <- counter land mask32;
  for i = 0 to 2 do
    st.(13 + i) <- Bytes_util.read_le32 nonce (4 * i)
  done;
  let init = Array.copy st in
  for _ = 1 to 10 do
    quarter_round st 0 4 8 12;
    quarter_round st 1 5 9 13;
    quarter_round st 2 6 10 14;
    quarter_round st 3 7 11 15;
    quarter_round st 0 5 10 15;
    quarter_round st 1 6 11 12;
    quarter_round st 2 7 8 13;
    quarter_round st 3 4 9 14
  done;
  let out = Buffer.create 64 in
  for i = 0 to 15 do
    Buffer.add_string out (Bytes_util.le32 ((st.(i) + init.(i)) land mask32))
  done;
  Buffer.contents out

let encrypt ~key ~nonce ?(counter = 0) msg =
  let len = String.length msg in
  let out = Bytes.create len in
  let nblocks = (len + 63) / 64 in
  for b = 0 to nblocks - 1 do
    let ks = block ~key ~counter:(counter + b) ~nonce in
    let off = 64 * b in
    let n = min 64 (len - off) in
    for i = 0 to n - 1 do
      Bytes.set out (off + i)
        (Char.chr (Char.code msg.[off + i] lxor Char.code ks.[i]))
    done
  done;
  Bytes.unsafe_to_string out
