lib/crypto/commitment.ml: Bytes_util Drbg Hex Sha256 String
