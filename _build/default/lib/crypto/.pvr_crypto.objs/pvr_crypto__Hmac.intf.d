lib/crypto/hmac.mli:
