lib/crypto/ring_signature.ml: Array Bigint Bytes_util Chacha20 Drbg Hmac List Rsa Sha256 String
