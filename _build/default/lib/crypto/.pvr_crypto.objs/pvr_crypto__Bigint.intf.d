lib/crypto/bigint.mli: Drbg Format
