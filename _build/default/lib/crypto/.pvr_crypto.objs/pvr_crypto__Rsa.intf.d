lib/crypto/rsa.mli: Bigint Drbg
