lib/crypto/bigint.ml: Array Buffer Char Drbg Format Stdlib String
