lib/crypto/hex.ml: Char Format String
