lib/crypto/drbg.mli:
