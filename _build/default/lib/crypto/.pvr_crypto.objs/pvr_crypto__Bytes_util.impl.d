lib/crypto/bytes_util.ml: Char Int64 List String
