lib/crypto/commitment.mli: Drbg
