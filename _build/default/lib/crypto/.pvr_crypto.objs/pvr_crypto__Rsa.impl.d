lib/crypto/rsa.ml: Bigint Bytes_util Hex Prime Sha256 String
