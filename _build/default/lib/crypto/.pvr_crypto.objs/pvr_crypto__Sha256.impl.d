lib/crypto/sha256.ml: Array Bytes Bytes_util Hex Int64 String
