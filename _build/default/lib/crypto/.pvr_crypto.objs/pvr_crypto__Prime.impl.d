lib/crypto/prime.ml: Array Bigint
