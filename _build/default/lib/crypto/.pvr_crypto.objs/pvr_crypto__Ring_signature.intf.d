lib/crypto/ring_signature.mli: Drbg Rsa
