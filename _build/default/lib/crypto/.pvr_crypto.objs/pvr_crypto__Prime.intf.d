lib/crypto/prime.mli: Bigint Drbg
