lib/crypto/drbg.ml: Array Buffer Char Hmac String
