lib/crypto/hmac.ml: Bytes_util Hex Sha256 String
