type commitment = string

type opening = { value : string; nonce : string }

let tag = "pvr-commit-v1:"

let commit_with_nonce ~nonce value =
  Sha256.digest (tag ^ Bytes_util.encode_list [ value; nonce ])

let commit rng value =
  let nonce = Drbg.generate rng 32 in
  (commit_with_nonce ~nonce value, { value; nonce })

let verify c { value; nonce } =
  Bytes_util.equal_ct c (commit_with_nonce ~nonce value)

let bit_string b = if b then "1" else "0"

let commit_bit rng b = commit rng (bit_string b)

let opening_bit o =
  match o.value with "0" -> Some false | "1" -> Some true | _ -> None

let to_hex c = Hex.encode c

let of_raw s =
  if String.length s <> Sha256.digest_size then
    invalid_arg "Commitment.of_raw: expected a 32-byte digest";
  s
