(** Hash commitments, the first PVR building block (§3.4).

    §3.2: "A can do this by publishing a commitment c := H(b || p), where H
    is a cryptographic hash function and p is a random bitstring."  The
    nonce is mandatory — the paper's footnote 2 notes that without it a
    neighbor could brute-force small domains (c = H(0) or c = H(1)).

    A commitment is hiding (the digest reveals nothing about the value, given
    the 32-byte random nonce) and binding (opening to a different value
    requires a SHA-256 collision). *)

type commitment = private string
(** The published digest (32 bytes).  Comparable with [=]. *)

type opening = { value : string; nonce : string }
(** What the committer reveals to authorized parties. *)

val commit : Drbg.t -> string -> commitment * opening
(** Commit to an arbitrary byte string with a fresh 32-byte nonce. *)

val commit_with_nonce : nonce:string -> string -> commitment
(** Deterministic form, for recomputation during verification. *)

val verify : commitment -> opening -> bool
(** Does the opening match the commitment? Constant-time comparison. *)

val commit_bit : Drbg.t -> bool -> commitment * opening
(** Commitment to a single bit, as in §3.2 / §3.3 (bits b, b_1 .. b_k). *)

val opening_bit : opening -> bool option
(** Interpret an opening's value as a bit; [None] if it is not ["0"]/["1"]. *)

val to_hex : commitment -> string

val of_raw : string -> commitment
(** Treat a received 32-byte string as a commitment digest.
    @raise Invalid_argument on wrong length. *)
