(* HMAC-DRBG per SP 800-90A §10.1.2, with SHA-256.  No prediction-resistance
   reseeding schedule: this generator is for reproducible experiments, not a
   production entropy source, so we deliberately never block on entropy. *)

type t = { mutable k : string; mutable v : string }

let update t provided =
  t.k <- Hmac.mac ~key:t.k (t.v ^ "\x00" ^ provided);
  t.v <- Hmac.mac ~key:t.k t.v;
  if provided <> "" then begin
    t.k <- Hmac.mac ~key:t.k (t.v ^ "\x01" ^ provided);
    t.v <- Hmac.mac ~key:t.k t.v
  end

let create ~seed =
  let t = { k = String.make 32 '\x00'; v = String.make 32 '\x01' } in
  update t seed;
  t

let of_int_seed n = create ~seed:("int-seed:" ^ string_of_int n)

let generate t n =
  let buf = Buffer.create n in
  while Buffer.length buf < n do
    t.v <- Hmac.mac ~key:t.k t.v;
    Buffer.add_string buf t.v
  done;
  update t "";
  String.sub (Buffer.contents buf) 0 n

let reseed t entropy = update t entropy

(* Rejection sampling over the smallest power-of-two envelope of [bound]. *)
let uniform_int t bound =
  if bound <= 0 then invalid_arg "Drbg.uniform_int: bound must be positive";
  if bound = 1 then 0
  else begin
    let bits =
      let rec needed b = if 1 lsl b >= bound then b else needed (b + 1) in
      needed 1
    in
    let bytes = (bits + 7) / 8 in
    let mask = (1 lsl bits) - 1 in
    let rec draw () =
      let s = generate t bytes in
      let v = ref 0 in
      String.iter (fun c -> v := (!v lsl 8) lor Char.code c) s;
      let v = !v land mask in
      if v < bound then v else draw ()
    in
    draw ()
  end

let bool t = uniform_int t 2 = 1

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Drbg.pick: empty array";
  arr.(uniform_int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = uniform_int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t label =
  let child_seed = generate t 32 ^ "split:" ^ label in
  create ~seed:child_seed
