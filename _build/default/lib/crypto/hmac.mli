(** HMAC-SHA-256 (RFC 2104 / FIPS 198-1).

    Used by {!Drbg} for deterministic random-bit generation and available as
    a keyed integrity primitive for PVR transport messages. *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA-256 tag of [msg] under [key].
    Keys of any length are accepted (hashed down if longer than one block). *)

val mac_hex : key:string -> string -> string
(** Hex-encoded variant of {!mac}. *)

val verify : key:string -> string -> tag:string -> bool
(** Constant-time tag check. *)
