let xor a b =
  if String.length a <> String.length b then
    invalid_arg "Bytes_util.xor: length mismatch";
  String.init (String.length a) (fun i ->
      Char.chr (Char.code a.[i] lxor Char.code b.[i]))

let equal_ct a b =
  if String.length a <> String.length b then false
  else begin
    let acc = ref 0 in
    for i = 0 to String.length a - 1 do
      acc := !acc lor (Char.code a.[i] lxor Char.code b.[i])
    done;
    !acc = 0
  end

let be32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (24 - 8 * i)) land 0xff))

let be64 v =
  String.init 8 (fun i ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (56 - 8 * i)) land 0xff))

let le32 v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * i)) land 0xff))

let read_be32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let read_le32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let concat parts = String.concat "" parts

let length_prefixed s = be32 (String.length s) ^ s

let encode_list items =
  concat (be32 (List.length items) :: List.map length_prefixed items)
