(** Ring signatures (Rivest–Shamir–Tauman, "How to Leak a Secret",
    ASIACRYPT 2001) over RSA trapdoor permutations.

    §3.2 of the paper: when PVR is applied to a link-state protocol that only
    exports whether a path exists, the N_i sign the statement "a route
    exists" with a ring signature, so B learns that {e some} N_i provided a
    route without learning which one.

    The combining function is the RST ring equation
    z_{i+1} = E_k(z_i xor y_i) with z_0 = z_r = v, where E_k is a 4-round
    Feistel permutation over the common domain (keyed by the message hash)
    and y_i = g_i(x_i) extends each member's RSA permutation to the common
    domain. *)

type t
(** A ring signature: the glue value and one x_i per ring member. *)

val sign :
  Drbg.t ->
  ring:Rsa.public_key array ->
  signer:int ->
  key:Rsa.private_key ->
  string ->
  t
(** [sign rng ~ring ~signer ~key msg] produces a signature proving that the
    holder of one of the [ring] keys signed [msg], where [ring.(signer)]
    equals [key.pub].
    @raise Invalid_argument if [signer] is out of range or the key does not
    match the ring slot. *)

val verify : ring:Rsa.public_key array -> msg:string -> t -> bool

val ring_size : t -> int

val encode : t -> string
(** Serialization (for gossip / evidence transcripts). *)

val decode : string -> t option
