(** Deterministic random-bit generator (HMAC-DRBG, NIST SP 800-90A).

    Every randomized component in this repository (commitment nonces, RSA key
    generation, workload generators) draws from a [Drbg.t] seeded explicitly,
    so all experiments are reproducible bit-for-bit from their seeds. *)

type t

val create : seed:string -> t
(** Instantiate from an arbitrary seed string (the personalization string). *)

val of_int_seed : int -> t
(** Convenience: seed from an integer. *)

val generate : t -> int -> string
(** [generate t n] produces [n] fresh pseudorandom bytes and advances the
    state. *)

val reseed : t -> string -> unit
(** Mix additional entropy into the state. *)

val uniform_int : t -> int -> int
(** [uniform_int t bound] is uniform in [\[0, bound)], via rejection
    sampling (no modulo bias).  @raise Invalid_argument if [bound <= 0]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val split : t -> string -> t
(** [split t label] derives an independent child generator; children with
    distinct labels produce independent streams.  The parent advances. *)
