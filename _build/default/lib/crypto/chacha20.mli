(** ChaCha20 stream cipher (RFC 8439).

    The Rivest–Shamir–Tauman ring signature of {!Ring_signature} needs a
    keyed symmetric permutation E_k; we instantiate it with ChaCha20 in
    counter mode, which also serves as the fast entropy expander inside
    {!Drbg} when long random strings are required. *)

val block : key:string -> counter:int -> nonce:string -> string
(** [block ~key ~counter ~nonce] is the 64-byte keystream block.
    @raise Invalid_argument unless [key] is 32 bytes and [nonce] 12 bytes. *)

val encrypt : key:string -> nonce:string -> ?counter:int -> string -> string
(** XOR the input with the keystream starting at [counter] (default 0).
    Encryption and decryption are the same operation. *)
