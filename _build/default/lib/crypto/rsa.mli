(** RSA signatures (PKCS#1 v1.5-style encoding over SHA-256).

    §3.8 of the paper argues PVR is cheap because its only public-key
    operation is "a public-key signature scheme (such as RSA)", quoting
    ~2 ms per RSA-1024 signature on 2011 hardware.  Experiment E4 re-measures
    that claim on this implementation.

    Signing uses the Chinese-Remainder optimization.  This implementation is
    for protocol research: it is not constant-time and must not be used to
    protect real secrets. *)

type public_key = { n : Bigint.t; e : Bigint.t }

type private_key = {
  pub : public_key;
  d : Bigint.t;
  p : Bigint.t;
  q : Bigint.t;
  dp : Bigint.t;   (** d mod (p-1) *)
  dq : Bigint.t;   (** d mod (q-1) *)
  qinv : Bigint.t; (** q^-1 mod p *)
}

val generate : Drbg.t -> bits:int -> private_key
(** Fresh key with an [bits]-bit modulus and e = 65537. *)

val key_size : public_key -> int
(** Modulus size in bytes. *)

val sign : private_key -> string -> string
(** Signature over SHA-256 of the message, one modulus-width string. *)

val verify : public_key -> msg:string -> signature:string -> bool

val raw_apply_public : public_key -> Bigint.t -> Bigint.t
(** The raw RSA permutation x -> x^e mod n, used by {!Ring_signature}. *)

val raw_apply_private : private_key -> Bigint.t -> Bigint.t
(** The inverse permutation x -> x^d mod n (CRT-accelerated). *)

val fingerprint : public_key -> string
(** SHA-256 hash identifying the key (used as a signer id in evidence). *)
