let small_primes =
  let sieve = Array.make 1000 true in
  sieve.(0) <- false;
  sieve.(1) <- false;
  for i = 2 to 999 do
    if sieve.(i) then begin
      let j = ref (i * i) in
      while !j < 1000 do
        sieve.(!j) <- false;
        j := !j + i
      done
    end
  done;
  let out = ref [] in
  for i = 999 downto 2 do
    if sieve.(i) then out := i :: !out
  done;
  Array.of_list !out

let miller_rabin_witness n d r a =
  (* Returns true if [a] witnesses that [n] is composite. *)
  let x = ref (Bigint.mod_pow ~base:a ~exp:d ~modulus:n) in
  let n1 = Bigint.sub_int n 1 in
  if Bigint.equal !x Bigint.one || Bigint.equal !x n1 then false
  else begin
    let composite = ref true in
    (try
       for _ = 1 to r - 1 do
         x := Bigint.rem (Bigint.mul !x !x) n;
         if Bigint.equal !x n1 then begin
           composite := false;
           raise Exit
         end
       done
     with Exit -> ());
    !composite
  end

let is_probably_prime ?(rounds = 32) rng n =
  if Bigint.compare n Bigint.two < 0 then false
  else if Bigint.equal n Bigint.two then true
  else if Bigint.is_even n then false
  else begin
    let small_factor =
      Array.exists
        (fun p ->
          let pb = Bigint.of_int p in
          Bigint.compare n pb > 0 && Bigint.rem_int n p = 0)
        small_primes
    in
    let is_small_prime =
      Bigint.bit_length n <= 10
      && Array.exists (fun p -> Bigint.equal n (Bigint.of_int p)) small_primes
    in
    if is_small_prime then true
    else if small_factor then false
    else begin
      (* Write n-1 = d * 2^r with d odd. *)
      let n1 = Bigint.sub_int n 1 in
      let r = ref 0 in
      let d = ref n1 in
      while Bigint.is_even !d do
        d := Bigint.shift_right !d 1;
        incr r
      done;
      let n3 = Bigint.sub_int n 3 in
      let rec rounds_left k =
        if k = 0 then true
        else begin
          let a = Bigint.add_int (Bigint.random_below rng n3) 2 in
          if miller_rabin_witness n !d !r a then false else rounds_left (k - 1)
        end
      in
      rounds_left rounds
    end
  end

let generate rng ~bits =
  if bits < 4 then invalid_arg "Prime.generate: need at least 4 bits";
  let rec attempt () =
    let cand = Bigint.random_odd_bits rng bits in
    (* Also force the second-highest bit so products reach full width. *)
    let cand =
      if Bigint.test_bit cand (bits - 2) then cand
      else Bigint.add cand (Bigint.shift_left Bigint.one (bits - 2))
    in
    if is_probably_prime rng cand then cand else attempt ()
  in
  attempt ()
