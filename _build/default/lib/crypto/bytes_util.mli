(** Small byte-string helpers shared by the crypto modules.

    All functions operate on immutable [string] values; none of them mutate
    their arguments. *)

val xor : string -> string -> string
(** [xor a b] is the bytewise exclusive-or of [a] and [b].
    @raise Invalid_argument if the lengths differ. *)

val equal_ct : string -> string -> bool
(** Constant-time equality: the running time depends only on the lengths,
    never on the position of the first differing byte. *)

val be32 : int -> string
(** 4-byte big-endian encoding of the low 32 bits of an integer. *)

val be64 : int64 -> string
(** 8-byte big-endian encoding. *)

val le32 : int -> string
(** 4-byte little-endian encoding of the low 32 bits. *)

val read_be32 : string -> int -> int
(** [read_be32 s off] reads a big-endian 32-bit value at byte offset [off]. *)

val read_le32 : string -> int -> int
(** [read_le32 s off] reads a little-endian 32-bit value at offset [off]. *)

val concat : string list -> string
(** Concatenation without separator (alias of [String.concat ""]). *)

val length_prefixed : string -> string
(** [length_prefixed s] is [be32 (String.length s) ^ s].  Used to build
    injective encodings of tuples before hashing. *)

val encode_list : string list -> string
(** Injective encoding of a list of strings: a [be32] count followed by each
    element length-prefixed.  Two distinct lists never encode equally. *)
