let block = Sha256.block_size

let normalize_key key =
  let key = if String.length key > block then Sha256.digest key else key in
  key ^ String.make (block - String.length key) '\x00'

let mac ~key msg =
  let key = normalize_key key in
  let ipad = Bytes_util.xor key (String.make block '\x36') in
  let opad = Bytes_util.xor key (String.make block '\x5c') in
  Sha256.digest (opad ^ Sha256.digest (ipad ^ msg))

let mac_hex ~key msg = Hex.encode (mac ~key msg)

let verify ~key msg ~tag = Bytes_util.equal_ct (mac ~key msg) tag
