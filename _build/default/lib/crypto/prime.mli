(** Probabilistic primality testing and prime generation (for RSA keygen). *)

val is_probably_prime : ?rounds:int -> Drbg.t -> Bigint.t -> bool
(** Miller–Rabin with [rounds] random bases (default 32), preceded by trial
    division by small primes.  Error probability at most 4^-rounds for a
    composite input. *)

val generate : Drbg.t -> bits:int -> Bigint.t
(** Random prime of exactly [bits] bits (top two bits set so that the product
    of two such primes has exactly [2*bits] bits).  Requires [bits >= 4]. *)

val small_primes : int array
(** The primes below 1000, used for trial division and available to tests. *)
