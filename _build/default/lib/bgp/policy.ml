type match_cond =
  | Match_prefix_exact of Prefix.t
  | Match_prefix_in of Prefix.t
  | Match_community of Route.community
  | Match_as_in_path of Asn.t
  | Match_next_hop of Asn.t
  | Match_path_length_le of int
  | Match_any

type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Route.community
  | Prepend of Asn.t * int

type decision = Accept | Reject

type clause = {
  matches : match_cond list;
  actions : action list;
  verdict : decision;
}

type t = clause list

let accept_all = [ { matches = []; actions = []; verdict = Accept } ]
let reject_all = [ { matches = []; actions = []; verdict = Reject } ]

let matches cond (r : Route.t) =
  match cond with
  | Match_prefix_exact p -> Prefix.equal p r.prefix
  | Match_prefix_in p -> Prefix.contains p r.prefix
  | Match_community c -> Route.has_community c r
  | Match_as_in_path a -> Route.through a r
  | Match_next_hop a -> Asn.equal a r.next_hop
  | Match_path_length_le n -> Route.path_length r <= n
  | Match_any -> true

let apply_action action r =
  match action with
  | Set_local_pref lp -> Route.with_local_pref lp r
  | Set_med m -> Route.with_med m r
  | Add_community c -> Route.add_community c r
  | Prepend (asn, n) ->
      let rec go r k =
        if k = 0 then r
        else go { r with Route.as_path = asn :: r.Route.as_path } (k - 1)
      in
      go r n

let evaluate policy r =
  let rec first = function
    | [] -> None
    | clause :: rest ->
        if List.for_all (fun c -> matches c r) clause.matches then
          match clause.verdict with
          | Reject -> None
          | Accept -> Some (List.fold_left (fun r a -> apply_action a r) r clause.actions)
        else first rest
  in
  first policy

let pp_match ppf = function
  | Match_prefix_exact p -> Format.fprintf ppf "prefix = %a" Prefix.pp p
  | Match_prefix_in p -> Format.fprintf ppf "prefix in %a" Prefix.pp p
  | Match_community (a, v) -> Format.fprintf ppf "community %d:%d" a v
  | Match_as_in_path a -> Format.fprintf ppf "path has %a" Asn.pp a
  | Match_next_hop a -> Format.fprintf ppf "from %a" Asn.pp a
  | Match_path_length_le n -> Format.fprintf ppf "pathlen <= %d" n
  | Match_any -> Format.pp_print_string ppf "any"

let pp_action ppf = function
  | Set_local_pref lp -> Format.fprintf ppf "local-pref %d" lp
  | Set_med m -> Format.fprintf ppf "med %d" m
  | Add_community (a, v) -> Format.fprintf ppf "community add %d:%d" a v
  | Prepend (asn, n) -> Format.fprintf ppf "prepend %a x%d" Asn.pp asn n

let pp ppf policy =
  List.iteri
    (fun i clause ->
      Format.fprintf ppf "@[<h>%d: if %a then %a %s@]@." i
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " && ")
           pp_match)
        (if clause.matches = [] then [ Match_any ] else clause.matches)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_action)
        clause.actions
        (match clause.verdict with Accept -> "accept" | Reject -> "reject"))
    policy
