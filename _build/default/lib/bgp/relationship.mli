(** AS business relationships (Gao 2001): who pays whom determines which
    routes may be exported where.  The paper's §1 motivates PVR with exactly
    these agreements ("network A might promise network B that it will act as
    B's provider, or it might enter into a 'partial transit'
    relationship"). *)

type t =
  | Customer  (** the neighbor is my customer (it pays me) *)
  | Peer      (** settlement-free peer *)
  | Provider  (** the neighbor is my provider (I pay it) *)

val invert : t -> t
(** The relationship as seen from the other side. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool

val export_allowed : learned_from:t -> to_:t -> bool
(** The Gao–Rexford export rule: routes learned from customers are exported
    to everyone; routes learned from peers or providers are exported only to
    customers. *)

val preference_rank : t -> int
(** Economic preference when choosing among routes: customer (0) over
    peer (1) over provider (2). *)
