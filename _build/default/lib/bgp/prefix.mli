(** IPv4 CIDR prefixes. *)

type t = private { addr : int; len : int }
(** [addr] is the 32-bit network address with host bits zeroed. *)

val make : addr:int -> len:int -> t
(** Host bits are masked off. @raise Invalid_argument unless
    [0 <= len <= 32]. *)

val of_string : string -> t
(** Parse ["10.0.0.0/8"].  @raise Invalid_argument on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
val compare : t -> t -> int

val contains : t -> t -> bool
(** [contains outer inner]: is [inner] a subset of [outer]? *)

val random : Pvr_crypto.Drbg.t -> t
(** A random /8../24 prefix (for workload generation). *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
