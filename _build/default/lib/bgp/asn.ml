type t = int

let of_int n =
  if n < 0 then invalid_arg "Asn.of_int: negative AS number";
  n

let to_int n = n
let equal = Int.equal
let compare = Int.compare
let hash n = n
let to_string n = "AS" ^ string_of_int n
let pp ppf n = Format.pp_print_string ppf (to_string n)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
