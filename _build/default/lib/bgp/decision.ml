type step =
  | Highest_local_pref
  | Shortest_as_path
  | Lowest_origin
  | Lowest_med
  | Lowest_neighbor

let standard_pipeline =
  [ Highest_local_pref; Shortest_as_path; Lowest_origin; Lowest_med;
    Lowest_neighbor ]

(* Keep the routes minimizing [key]. *)
let keep_minimal key routes =
  match routes with
  | [] -> []
  | _ ->
      let best = List.fold_left (fun acc r -> min acc (key r)) max_int routes in
      List.filter (fun r -> key r = best) routes

let origin_rank (r : Route.t) =
  match r.origin with Route.Igp -> 0 | Route.Egp -> 1 | Route.Incomplete -> 2

let run_step step routes =
  match step with
  | Highest_local_pref -> keep_minimal (fun (r : Route.t) -> -r.local_pref) routes
  | Shortest_as_path -> keep_minimal Route.path_length routes
  | Lowest_origin -> keep_minimal origin_rank routes
  | Lowest_med -> keep_minimal (fun (r : Route.t) -> r.med) routes
  | Lowest_neighbor ->
      keep_minimal (fun (r : Route.t) -> Asn.to_int r.next_hop) routes

let best ?(pipeline = standard_pipeline) routes =
  match List.fold_left (fun rs step -> run_step step rs) routes pipeline with
  | [] -> None
  | r :: _ -> Some r

let rank routes =
  let rec go remaining acc =
    match best remaining with
    | None -> List.rev acc
    | Some winner ->
        let rest = List.filter (fun r -> not (Route.equal r winner)) remaining in
        go rest (winner :: acc)
  in
  go routes []
