type event = { at_ms : int; route : Route.t }

let random_route rng ~origin =
  let prefix = Prefix.random rng in
  let hops = 1 + Pvr_crypto.Drbg.uniform_int rng 5 in
  let path =
    List.init hops (fun i ->
        if i = hops - 1 then origin
        else Asn.of_int (64512 + Pvr_crypto.Drbg.uniform_int rng 1000))
  in
  let base = Route.originate ~asn:origin prefix in
  let r = { base with Route.as_path = path } in
  match path with [] -> r | hd :: _ -> { r with Route.next_hop = hd }

(* Truncated geometric: mean ~ [mean], capped at 8x mean. *)
let geometric rng mean =
  if mean <= 1 then 1
  else begin
    let p = 1.0 /. float_of_int mean in
    let cap = 8 * mean in
    let rec go n =
      if n >= cap then cap
      else if Pvr_crypto.Drbg.uniform_int rng 1_000_000 < int_of_float (p *. 1_000_000.) then n
      else go (n + 1)
    in
    go 1
  end

let bursty rng ~duration_ms ~base_rate_per_s ~burst_every_ms ~burst_size_mean
    ~origin =
  let events = ref [] in
  (* Background traffic: Bernoulli per millisecond. *)
  let per_ms = base_rate_per_s /. 1000.0 in
  let threshold = int_of_float (per_ms *. 1_000_000.) in
  for ms = 0 to duration_ms - 1 do
    if Pvr_crypto.Drbg.uniform_int rng 1_000_000 < threshold then
      events := { at_ms = ms; route = random_route rng ~origin } :: !events;
    if burst_every_ms > 0 && ms mod burst_every_ms = 0 && ms > 0 then begin
      let n = geometric rng burst_size_mean in
      for _ = 1 to n do
        events := { at_ms = ms; route = random_route rng ~origin } :: !events
      done
    end
  done;
  List.stable_sort (fun a b -> Int.compare a.at_ms b.at_ms) (List.rev !events)

let batches ~window_ms events =
  let table = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let w = e.at_ms / window_ms in
      let cur = Option.value (Hashtbl.find_opt table w) ~default:[] in
      Hashtbl.replace table w (e.route :: cur))
    events;
  Hashtbl.fold (fun w routes acc -> (w, List.rev routes) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd
