(** AS-level topologies: the graph of ASes and inter-AS links annotated with
    business relationships, plus the synthetic generators used by the
    experiments (operational topologies being unavailable, per DESIGN.md). *)

type link = {
  a : Asn.t;
  b : Asn.t;
  rel_ab : Relationship.t;  (** what [b] is to [a], e.g. [Customer] = b pays a *)
}

type t

val empty : t
val add_as : t -> Asn.t -> t
val add_link : t -> a:Asn.t -> b:Asn.t -> rel_ab:Relationship.t -> t
(** Adds both endpoints if absent.  @raise Invalid_argument on self-links or
    duplicate links. *)

val ases : t -> Asn.t list
val links : t -> link list
val neighbors : t -> Asn.t -> (Asn.t * Relationship.t) list
(** Each neighbor with what *it* is to the queried AS. *)

val relationship : t -> Asn.t -> Asn.t -> Relationship.t option
(** [relationship t x y]: what [y] is to [x], if linked. *)

val size : t -> int
val degree : t -> Asn.t -> int

(** {2 Generators} *)

val star : center:Asn.t -> leaves:Asn.t list -> rel:Relationship.t -> t
(** Figure 1: one AS [A] connected to N1..Nk and B.  [rel] is what each leaf
    is to the center. *)

val chain : Asn.t list -> t
(** A provider chain: each AS is the provider of the next. *)

val clique : Asn.t list -> t
(** Full mesh of peers. *)

val hierarchy :
  Pvr_crypto.Drbg.t ->
  tiers:int list ->
  extra_peering:float ->
  t
(** Gao–Rexford-style hierarchy: [tiers] gives the number of ASes per tier,
    top first.  Tier-1 ASes form a peering clique; every lower-tier AS gets
    1–2 providers in the tier above; [extra_peering] is the probability of a
    peering link between same-tier ASes.  AS numbers are assigned 1..n from
    the top. *)

val pp : Format.formatter -> t -> unit
