(** Synthetic BGP update workloads.

    §3.8 worries about signing cost "during BGP message bursts"; operational
    update traces are not available in this environment, so experiment E5
    drives the batching bench with bursty synthetic traces: quiet periods of
    single updates interleaved with bursts (as after a session reset or a
    flap), with burst sizes drawn from a truncated geometric distribution. *)

type event = { at_ms : int; route : Route.t }

val bursty :
  Pvr_crypto.Drbg.t ->
  duration_ms:int ->
  base_rate_per_s:float ->
  burst_every_ms:int ->
  burst_size_mean:int ->
  origin:Asn.t ->
  event list
(** Events sorted by timestamp.  Routes are announcements of random prefixes
    with short random paths ending at [origin]. *)

val batches : window_ms:int -> event list -> Route.t list list
(** Group a trace into signing batches by fixed time window; empty windows
    are dropped. *)
