type t = Customer | Peer | Provider

let invert = function
  | Customer -> Provider
  | Peer -> Peer
  | Provider -> Customer

let to_string = function
  | Customer -> "customer"
  | Peer -> "peer"
  | Provider -> "provider"

let pp ppf t = Format.pp_print_string ppf (to_string t)
let equal a b = a = b

let export_allowed ~learned_from ~to_ =
  match (learned_from, to_) with
  | Customer, _ -> true
  | (Peer | Provider), Customer -> true
  | (Peer | Provider), (Peer | Provider) -> false

let preference_rank = function Customer -> 0 | Peer -> 1 | Provider -> 2
