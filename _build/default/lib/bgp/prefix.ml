type t = { addr : int; len : int }

let mask len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let make ~addr ~len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: length out of range";
  { addr = addr land mask len; len }

let of_string s =
  match String.index_opt s '/' with
  | None -> invalid_arg "Prefix.of_string: missing '/'"
  | Some slash ->
      let ip = String.sub s 0 slash in
      let len =
        match int_of_string_opt (String.sub s (slash + 1) (String.length s - slash - 1)) with
        | Some l -> l
        | None -> invalid_arg "Prefix.of_string: bad length"
      in
      let octets = String.split_on_char '.' ip in
      let addr =
        match List.map int_of_string_opt octets with
        | [ Some a; Some b; Some c; Some d ]
          when List.for_all (fun x -> x >= 0 && x <= 255) [ a; b; c; d ] ->
            (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d
        | _ -> invalid_arg "Prefix.of_string: bad IPv4 address"
      in
      make ~addr ~len

let to_string { addr; len } =
  Printf.sprintf "%d.%d.%d.%d/%d" (addr lsr 24 land 0xff)
    (addr lsr 16 land 0xff) (addr lsr 8 land 0xff) (addr land 0xff) len

let pp ppf p = Format.pp_print_string ppf (to_string p)
let equal a b = a.addr = b.addr && a.len = b.len

let compare a b =
  match Int.compare a.addr b.addr with 0 -> Int.compare a.len b.len | c -> c

let contains outer inner =
  outer.len <= inner.len && inner.addr land mask outer.len = outer.addr

let random rng =
  let len = 8 + Pvr_crypto.Drbg.uniform_int rng 17 in
  let addr = Pvr_crypto.Drbg.uniform_int rng 0x1000000 lsl 8 in
  make ~addr ~len

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
