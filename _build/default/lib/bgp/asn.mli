(** Autonomous-system numbers. *)

type t = private int

val of_int : int -> t
(** @raise Invalid_argument on negative numbers. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
(** Prints as ["AS64512"]. *)

val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
