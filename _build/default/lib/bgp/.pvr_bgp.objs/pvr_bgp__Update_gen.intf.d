lib/bgp/update_gen.mli: Asn Pvr_crypto Route
