lib/bgp/relationship.ml: Format
