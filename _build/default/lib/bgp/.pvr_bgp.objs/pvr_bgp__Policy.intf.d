lib/bgp/policy.mli: Asn Format Prefix Route
