lib/bgp/policy.ml: Asn Format List Prefix Route
