lib/bgp/topology.mli: Asn Format Pvr_crypto Relationship
