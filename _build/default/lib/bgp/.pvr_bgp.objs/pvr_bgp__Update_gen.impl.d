lib/bgp/update_gen.ml: Asn Hashtbl Int List Option Prefix Pvr_crypto Route
