lib/bgp/asn.mli: Format Map Set
