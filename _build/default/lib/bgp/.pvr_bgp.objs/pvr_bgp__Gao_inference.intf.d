lib/bgp/gao_inference.mli: Asn Relationship Topology
