lib/bgp/relationship.mli: Format
