lib/bgp/prefix.ml: Format Int List Map Printf Pvr_crypto Set String
