lib/bgp/topology.ml: Array Asn Format List Option Pvr_crypto Relationship
