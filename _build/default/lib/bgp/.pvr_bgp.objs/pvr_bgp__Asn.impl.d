lib/bgp/asn.ml: Format Int Map Set
