lib/bgp/prefix.mli: Format Map Pvr_crypto Set
