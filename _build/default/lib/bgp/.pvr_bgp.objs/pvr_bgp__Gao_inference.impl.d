lib/bgp/gao_inference.ml: Array Asn List Map Option Relationship Topology
