lib/bgp/simulator.ml: Asn Decision List Option Policy Prefix Queue Relationship Rib Route Topology
