lib/bgp/rib.ml: Asn List Option Prefix Route
