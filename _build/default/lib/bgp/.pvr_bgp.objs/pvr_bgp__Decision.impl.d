lib/bgp/decision.ml: Asn List Route
