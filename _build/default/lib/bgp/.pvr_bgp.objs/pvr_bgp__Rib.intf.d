lib/bgp/rib.mli: Asn Prefix Route
