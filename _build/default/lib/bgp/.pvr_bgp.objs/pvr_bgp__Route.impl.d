lib/bgp/route.ml: Asn Format List Prefix Pvr_crypto String
