lib/bgp/simulator.mli: Asn Policy Prefix Rib Route Topology
