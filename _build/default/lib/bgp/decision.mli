(** The BGP best-route decision process.

    §2.1: "An example would be an operator for selecting, from a given set
    of routes, the routes with minimal AS path length (the second step in
    BGP).  A pipeline of such operators, one for each attribute, makes up
    the usual route selection process."  This module is that pipeline in its
    ordinary, non-verifiable form; {!Pvr_rfg} re-expresses the same steps as
    route-flow-graph operators. *)

type step =
  | Highest_local_pref
  | Shortest_as_path
  | Lowest_origin
  | Lowest_med
  | Lowest_neighbor
      (** deterministic tie-break on the next-hop AS number *)

val standard_pipeline : step list

val run_step : step -> Route.t list -> Route.t list
(** Keep only the routes surviving this step (never empties a non-empty
    input). *)

val best : ?pipeline:step list -> Route.t list -> Route.t option
(** The single best route, or [None] on empty input.  The standard pipeline
    always narrows to one route because [Lowest_neighbor] is a total
    tie-break; a custom pipeline that does not narrow picks the first
    survivor. *)

val rank : Route.t list -> Route.t list
(** All candidates, best first, by repeatedly extracting the winner. *)
