(** BGP routes: a prefix plus the path attributes the decision process and
    the PVR operators inspect. *)

type origin = Igp | Egp | Incomplete

type community = int * int
(** Classic 32-bit community, written [asn:value]. *)

type t = {
  prefix : Prefix.t;
  as_path : Asn.t list;       (** nearest AS first; the origin AS is last *)
  next_hop : Asn.t;           (** the neighbor the route was learned from *)
  local_pref : int;
  med : int;
  origin : origin;
  communities : community list;
}

val originate : asn:Asn.t -> Prefix.t -> t
(** The route an origin AS injects for its own prefix: empty-to-self path
    semantics, [as_path = [asn]], default attributes. *)

val path_length : t -> int

val has_loop : Asn.t -> t -> bool
(** Would importing this route at the given AS create an AS-path loop? *)

val through : Asn.t -> t -> bool
(** Does the AS path traverse the given AS? *)

val prepend : Asn.t -> t -> t
(** [prepend asn r] is the route as announced by [asn]: path extended at the
    front.  [next_hop] becomes [asn]. *)

val with_local_pref : int -> t -> t
val with_med : int -> t -> t
val add_community : community -> t -> t
val has_community : community -> t -> bool
val strip_private_attrs : t -> t
(** What actually crosses an AS boundary: local-pref is meaningless to the
    neighbor and reset to the default. *)

val default_local_pref : int

val encode : t -> string
(** Injective byte encoding, used for signing and commitments. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int
