type inferred = (Asn.t * Asn.t * Relationship.t) list

module Edge = struct
  type t = Asn.t * Asn.t

  let compare (a1, b1) (a2, b2) =
    match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c
end

module Edge_map = Map.Make (Edge)

let infer ~degree paths =
  (* For each path, find the index of the maximum-degree AS (the "top
     provider"); edges before it go up, edges after it go down. *)
  let votes = ref Edge_map.empty in
  let vote a b rel =
    let key = if Asn.compare a b <= 0 then (a, b) else (b, a) in
    let rel = if Asn.compare a b <= 0 then rel else Relationship.invert rel in
    let cur = Option.value (Edge_map.find_opt key !votes) ~default:[] in
    votes := Edge_map.add key (rel :: cur) !votes
  in
  List.iter
    (fun path ->
      let arr = Array.of_list path in
      let n = Array.length arr in
      if n >= 2 then begin
        let top = ref 0 in
        for i = 1 to n - 1 do
          if degree arr.(i) > degree arr.(!top) then top := i
        done;
        for i = 0 to n - 2 do
          (* Edge between arr.(i) and arr.(i+1).  Remember: paths are
             nearest-first, so arr.(i+1) is *closer to the origin*; walking
             i -> i+1 goes towards the destination.  If i+1 <= top the
             origin side is below the top: arr.(i) is provider of...
             We reason from the top index: positions < top are on the
             receiving side (each learned the route from the next AS). *)
          if i + 1 < !top then
            (* both below the top on the receiving side: traffic flows up:
               arr.(i) is the customer of arr.(i+1)?  No: receiving side
               ASes are *descending* from the top towards the vantage
               point; arr.(i) learned from arr.(i+1), and in a valley-free
               path below the summit the one nearer the vantage point is
               the customer. *)
            vote arr.(i) arr.(i + 1) Relationship.Provider
          else if i >= !top then
            (* origin side: arr.(i+1) is below arr.(i): customer. *)
            vote arr.(i) arr.(i + 1) Relationship.Customer
          else
            (* the edge crossing the summit (i+1 = top = i+1, i < top):
               arr.(i+1) is the summit seen from below. *)
            vote arr.(i) arr.(i + 1) Relationship.Provider
        done
      end)
    paths;
  Edge_map.fold
    (fun (a, b) rels acc ->
      (* Majority vote per edge; peering when evenly split. *)
      let count rel = List.length (List.filter (Relationship.equal rel) rels) in
      let c = count Relationship.Customer and p = count Relationship.Provider in
      let rel =
        if c > p then Relationship.Customer
        else if p > c then Relationship.Provider
        else Relationship.Peer
      in
      (a, b, rel) :: acc)
    !votes []

let accuracy ~truth inferred =
  match inferred with
  | [] -> 0.0
  | _ ->
      let correct =
        List.length
          (List.filter
             (fun (a, b, rel) ->
               match Topology.relationship truth a b with
               | Some actual -> Relationship.equal actual rel
               | None -> false)
             inferred)
      in
      float_of_int correct /. float_of_int (List.length inferred)
