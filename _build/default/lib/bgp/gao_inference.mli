(** Gao-style AS-relationship inference from observed AS paths.

    §1 of the paper: "it is possible ... to classify AS business
    relationships on the basis of publicly available data [5, 7].  These
    inferences go beyond what was intended in publishing that data."

    This module is the *attacker's* tool: given the AS paths visible at
    vantage points, infer who is whose provider.  Experiment E7 uses it to
    quantify how much more a full-disclosure verification scheme (NetReview
    baseline) leaks than PVR: the more routing state is revealed, the more
    accurately relationships are recovered.

    The algorithm is the degree-based heuristic of Gao (2001), simplified:
    in a valley-free path the highest-degree AS is the top; edges walking up
    to it are customer→provider, edges walking down are provider→customer,
    and the edge at the top (if the plateau has two ASes) is a peering. *)

type inferred = (Asn.t * Asn.t * Relationship.t) list
(** [(a, b, rel)]: [rel] is what [b] is inferred to be to [a]. *)

val infer : degree:(Asn.t -> int) -> Asn.t list list -> inferred
(** Infer from a set of AS paths (each nearest-AS-first, as in
    {!Route.t.as_path}). *)

val accuracy : truth:Topology.t -> inferred -> float
(** Fraction of inferred edges whose relationship matches the topology
    (edges absent from the topology are counted as wrong); 1.0 when every
    inferred edge is right, 0.0 for an empty inference. *)
