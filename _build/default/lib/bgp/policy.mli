(** Router policies: the predicate/action language real configurations are
    written in (route-maps, in vendor terms).

    A policy is a first-match list of clauses; each clause is a conjunction
    of matches plus a list of actions ending in accept or reject.  §4 of the
    paper asks for "language support for compiling a high-level policy
    description (or router configuration file) into a compact route-flow
    graph" — {!Pvr_rfg.Compiler} consumes this representation. *)

type match_cond =
  | Match_prefix_exact of Prefix.t
  | Match_prefix_in of Prefix.t        (** route's prefix within this block *)
  | Match_community of Route.community
  | Match_as_in_path of Asn.t
  | Match_next_hop of Asn.t
  | Match_path_length_le of int
  | Match_any

type action =
  | Set_local_pref of int
  | Set_med of int
  | Add_community of Route.community
  | Prepend of Asn.t * int             (** prepend own ASN n extra times *)

type decision = Accept | Reject

type clause = {
  matches : match_cond list;  (** conjunction; empty list matches all *)
  actions : action list;
  verdict : decision;
}

type t = clause list
(** First matching clause wins; a route matching no clause is rejected
    (deny-by-default, as on real routers). *)

val accept_all : t
val reject_all : t

val matches : match_cond -> Route.t -> bool
val apply_action : action -> Route.t -> Route.t

val evaluate : t -> Route.t -> Route.t option
(** [None] if rejected. *)

val pp : Format.formatter -> t -> unit
