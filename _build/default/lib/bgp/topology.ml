type link = { a : Asn.t; b : Asn.t; rel_ab : Relationship.t }

type t = {
  nodes : Asn.Set.t;
  (* adjacency: for each AS, each neighbor with what the neighbor is to it *)
  adj : Relationship.t Asn.Map.t Asn.Map.t;
}

let empty = { nodes = Asn.Set.empty; adj = Asn.Map.empty }

let add_as t asn = { t with nodes = Asn.Set.add asn t.nodes }

let adj_find t x =
  Option.value (Asn.Map.find_opt x t.adj) ~default:Asn.Map.empty

let add_link t ~a ~b ~rel_ab =
  if Asn.equal a b then invalid_arg "Topology.add_link: self-link";
  if Asn.Map.mem b (adj_find t a) then
    invalid_arg "Topology.add_link: duplicate link";
  let adj =
    t.adj
    |> Asn.Map.add a (Asn.Map.add b rel_ab (adj_find t a))
    |> fun adj ->
    let from_b =
      Option.value (Asn.Map.find_opt b adj) ~default:Asn.Map.empty
    in
    Asn.Map.add b (Asn.Map.add a (Relationship.invert rel_ab) from_b) adj
  in
  { nodes = Asn.Set.add a (Asn.Set.add b t.nodes); adj }

let ases t = Asn.Set.elements t.nodes

let links t =
  Asn.Map.fold
    (fun a per_n acc ->
      Asn.Map.fold
        (fun b rel acc ->
          if Asn.compare a b < 0 then { a; b; rel_ab = rel } :: acc else acc)
        per_n acc)
    t.adj []
  |> List.rev

let neighbors t x = Asn.Map.bindings (adj_find t x)

let relationship t x y = Asn.Map.find_opt y (adj_find t x)

let size t = Asn.Set.cardinal t.nodes

let degree t x = Asn.Map.cardinal (adj_find t x)

let star ~center ~leaves ~rel =
  List.fold_left
    (fun t leaf -> add_link t ~a:center ~b:leaf ~rel_ab:rel)
    (add_as empty center) leaves

let chain ases =
  let rec go t = function
    | a :: (b :: _ as rest) ->
        go (add_link t ~a ~b ~rel_ab:Relationship.Customer) rest
    | [ a ] -> add_as t a
    | [] -> t
  in
  go empty ases

let clique ases =
  let rec go t = function
    | [] -> t
    | a :: rest ->
        let t =
          List.fold_left
            (fun t b -> add_link t ~a ~b ~rel_ab:Relationship.Peer)
            (add_as t a) rest
        in
        go t rest
  in
  go empty ases

let hierarchy rng ~tiers ~extra_peering =
  let next = ref 0 in
  let fresh () =
    incr next;
    Asn.of_int !next
  in
  let tier_nodes = List.map (fun n -> Array.init n (fun _ -> fresh ())) tiers in
  let t = ref empty in
  List.iter (fun nodes -> Array.iter (fun a -> t := add_as !t a) nodes) tier_nodes;
  (* Tier-1 clique of peers. *)
  (match tier_nodes with
  | top :: _ ->
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if j > i then t := add_link !t ~a ~b ~rel_ab:Relationship.Peer)
            top)
        top
  | [] -> ());
  (* Each lower-tier AS picks 1-2 providers in the tier above. *)
  let rec wire = function
    | upper :: (lower :: _ as rest) ->
        Array.iter
          (fun a ->
            let nproviders = 1 + Pvr_crypto.Drbg.uniform_int rng 2 in
            let chosen = ref Asn.Set.empty in
            for _ = 1 to nproviders do
              let p = Pvr_crypto.Drbg.pick rng upper in
              if not (Asn.Set.mem p !chosen) then begin
                chosen := Asn.Set.add p !chosen;
                (* p is a's provider *)
                t := add_link !t ~a ~b:p ~rel_ab:Relationship.Provider
              end
            done)
          lower;
        wire rest
    | _ -> ()
  in
  wire tier_nodes;
  (* Optional same-tier peering below tier 1. *)
  (match tier_nodes with
  | _ :: lower_tiers ->
      List.iter
        (fun nodes ->
          Array.iteri
            (fun i a ->
              Array.iteri
                (fun j b ->
                  if
                    j > i
                    && Pvr_crypto.Drbg.uniform_int rng 1000
                       < int_of_float (extra_peering *. 1000.)
                    && relationship !t a b = None
                  then t := add_link !t ~a ~b ~rel_ab:Relationship.Peer)
                nodes)
            nodes)
        lower_tiers
  | [] -> ());
  !t

let pp ppf t =
  Format.fprintf ppf "@[<v>%d ASes, %d links@," (size t) (List.length (links t));
  List.iter
    (fun { a; b; rel_ab } ->
      Format.fprintf ppf "%a -[%a]- %a@," Asn.pp a Relationship.pp rel_ab Asn.pp b)
    (links t);
  Format.fprintf ppf "@]"
