module BU = Pvr_crypto.Bytes_util

type origin = Igp | Egp | Incomplete

type community = int * int

type t = {
  prefix : Prefix.t;
  as_path : Asn.t list;
  next_hop : Asn.t;
  local_pref : int;
  med : int;
  origin : origin;
  communities : community list;
}

let default_local_pref = 100

let originate ~asn prefix =
  {
    prefix;
    as_path = [ asn ];
    next_hop = asn;
    local_pref = default_local_pref;
    med = 0;
    origin = Igp;
    communities = [];
  }

let path_length r = List.length r.as_path

let through asn r = List.exists (Asn.equal asn) r.as_path

let has_loop asn r = through asn r

let prepend asn r =
  { r with as_path = asn :: r.as_path; next_hop = asn }

let with_local_pref lp r = { r with local_pref = lp }
let with_med med r = { r with med }

let add_community c r =
  if List.mem c r.communities then r
  else { r with communities = c :: r.communities }

let has_community c r = List.mem c r.communities

let strip_private_attrs r = { r with local_pref = default_local_pref }

let origin_code = function Igp -> 0 | Egp -> 1 | Incomplete -> 2

let encode r =
  BU.encode_list
    [
      Prefix.to_string r.prefix;
      BU.encode_list
        (List.map (fun a -> BU.be32 (Asn.to_int a)) r.as_path);
      BU.be32 (Asn.to_int r.next_hop);
      BU.be32 r.local_pref;
      BU.be32 r.med;
      BU.be32 (origin_code r.origin);
      BU.encode_list
        (List.map (fun (a, v) -> BU.be32 a ^ BU.be32 v) r.communities);
    ]

let pp ppf r =
  Format.fprintf ppf "%a via [%s]" Prefix.pp r.prefix
    (String.concat " " (List.map Asn.to_string r.as_path))

let to_string r = Format.asprintf "%a" pp r

let equal a b = encode a = encode b

let compare a b = String.compare (encode a) (encode b)
