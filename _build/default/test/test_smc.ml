(* Tests for pvr_smc: boolean circuits, XOR sharing, the GMW evaluation, the
   calibrated cost models, and the NetReview full-disclosure baseline. *)

module S = Pvr_smc
module C = Pvr_crypto
module G = Pvr_bgp

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let bits_of_int ~width v = Array.init width (fun i -> (v lsr i) land 1 = 1)

let int_of_bits bits =
  List.fold_left
    (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc)
    0
    (List.mapi (fun i b -> (i, b)) bits)

(* ---- Circuits ------------------------------------------------------------- *)

let circuit_less_than =
  qtest "less_than circuit = (<)"
    QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let c = S.Circuit.less_than ~bits:8 in
      let inputs = Array.append (bits_of_int ~width:8 a) (bits_of_int ~width:8 b) in
      S.Circuit.eval c inputs = [ a < b ])

let circuit_minimum =
  qtest "minimum circuit = List.fold min"
    QCheck2.Gen.(list_size (int_range 1 6) (int_bound 63))
    (fun vals ->
      let k = List.length vals in
      let c = S.Circuit.minimum ~bits:6 ~k in
      let inputs =
        Array.concat (List.map (bits_of_int ~width:6) vals)
      in
      int_of_bits (S.Circuit.eval c inputs)
      = List.fold_left min max_int vals)

let circuit_majority =
  qtest "majority circuit = popcount > n/2"
    QCheck2.Gen.(list_size (int_range 1 15) bool)
    (fun votes ->
      let n = List.length votes in
      let c = S.Circuit.majority_vote ~voters:n in
      let count = List.length (List.filter Fun.id votes) in
      S.Circuit.eval c (Array.of_list votes) = [ count > n / 2 ])

let circuit_stats_sane () =
  let c = S.Circuit.minimum ~bits:8 ~k:4 in
  check_bool "has ANDs" true (S.Circuit.and_count c > 0);
  check_bool "depth <= ands" true (S.Circuit.and_depth c <= S.Circuit.and_count c);
  check_bool "size >= ands" true (S.Circuit.size c >= S.Circuit.and_count c)

let circuit_minimum_grows_with_k () =
  let ands k = S.Circuit.and_count (S.Circuit.minimum ~bits:8 ~k) in
  check_bool "monotone" true (ands 2 < ands 4 && ands 4 < ands 8)

let circuit_bad_input_count () =
  let c = S.Circuit.less_than ~bits:4 in
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Circuit.eval: wrong input count") (fun () ->
      ignore (S.Circuit.eval c (Array.make 3 false)))

(* ---- Secret sharing --------------------------------------------------------- *)

let share_reconstruct =
  qtest "share then reconstruct"
    QCheck2.Gen.(triple small_int (int_range 2 7) bool)
    (fun (seed, parties, secret) ->
      let rng = C.Drbg.of_int_seed seed in
      S.Secret_share.reconstruct (S.Secret_share.share rng ~parties secret)
      = secret)

let share_hides_from_strict_subset () =
  (* Any n-1 shares are uniformly distributed: flipping the secret with the
     same randomness changes exactly one share. *)
  let rng1 = C.Drbg.of_int_seed 5 and rng2 = C.Drbg.of_int_seed 5 in
  let s_true = S.Secret_share.share rng1 ~parties:4 true in
  let s_false = S.Secret_share.share rng2 ~parties:4 false in
  let diffs = ref 0 in
  Array.iteri (fun i a -> if a <> s_false.(i) then incr diffs) s_true;
  check_int "one share differs" 1 !diffs

let share_bits_roundtrip =
  qtest "share_bits reconstructs" QCheck2.Gen.(pair small_int (int_range 2 5))
    (fun (seed, parties) ->
      let rng = C.Drbg.of_int_seed seed in
      let secrets = Array.init 20 (fun i -> (seed lsr (i mod 8)) land 1 = 1) in
      S.Secret_share.reconstruct_bits
        (S.Secret_share.share_bits rng ~parties secrets)
      = secrets)

(* ---- GMW ---------------------------------------------------------------------- *)

let gmw_matches_plain =
  qtest "GMW result = plain evaluation" ~count:25
    QCheck2.Gen.(triple small_int (int_range 2 5) (list_size (int_range 1 4) (int_bound 63)))
    (fun (seed, parties, vals) ->
      let rng = C.Drbg.of_int_seed seed in
      let k = List.length vals in
      let c = S.Circuit.minimum ~bits:6 ~k in
      let inputs = Array.concat (List.map (bits_of_int ~width:6) vals) in
      let plain = S.Circuit.eval c inputs in
      let secure, stats = S.Gmw.run rng ~parties c ~inputs in
      secure = plain
      && stats.S.Gmw.and_gates = S.Circuit.and_count c
      && stats.S.Gmw.rounds = S.Circuit.and_depth c + 1
      && stats.S.Gmw.bits_sent > 0)

let gmw_needs_two_parties () =
  let c = S.Circuit.less_than ~bits:2 in
  Alcotest.check_raises "1 party" (Invalid_argument "Gmw.run: need at least 2 parties")
    (fun () ->
      ignore
        (S.Gmw.run (C.Drbg.of_int_seed 1) ~parties:1 c ~inputs:(Array.make 4 false)))

let gmw_traffic_scales_with_parties () =
  let c = S.Circuit.minimum ~bits:6 ~k:3 in
  let inputs = Array.make 18 false in
  let _, s2 = S.Gmw.run (C.Drbg.of_int_seed 1) ~parties:2 c ~inputs in
  let _, s8 = S.Gmw.run (C.Drbg.of_int_seed 1) ~parties:8 c ~inputs in
  check_bool "more parties, more traffic" true
    (s8.S.Gmw.bits_sent > s2.S.Gmw.bits_sent)

(* ---- Cost model ----------------------------------------------------------------- *)

let cost_model_anchor () =
  let m = S.Cost_model.default in
  let predicted = S.Cost_model.anchor_check m in
  check_bool
    (Printf.sprintf "anchor %.2f within 1%% of 15s" predicted)
    true
    (Float.abs (predicted -. 15.0) < 0.15)

let cost_model_scaling_shape () =
  let m = S.Cost_model.default in
  let t k =
    S.Cost_model.smc_seconds_for m (S.Circuit.minimum ~bits:8 ~k) ~parties:(k + 1)
  in
  check_bool "grows with k" true (t 2 < t 4 && t 4 < t 8 && t 8 < t 16);
  (* The paper's point: SMC per update is prohibitive compared to a
     signature (~ms). *)
  check_bool "k=8 is orders of magnitude beyond 2ms" true (t 8 > 1.0)

let cost_model_zkp_linear () =
  let m = S.Cost_model.default in
  check_bool "zkp linear in gates" true
    (S.Cost_model.zkp_seconds m ~gates:2000
    = 2. *. S.Cost_model.zkp_seconds m ~gates:1000)

(* ---- NetReview baseline ----------------------------------------------------------- *)

let mk_route n len =
  let path =
    List.init len (fun j -> if j = 0 then G.Asn.of_int n else G.Asn.of_int (3000 + j))
  in
  let base = G.Route.originate ~asn:(G.Asn.of_int n) (G.Prefix.of_string "10.0.0.0/8") in
  { base with G.Route.as_path = path; next_hop = G.Asn.of_int n }

let netreview_verifies_honest () =
  let inputs = [ (G.Asn.of_int 10, mk_route 10 3); (G.Asn.of_int 11, mk_route 11 1) ] in
  let d = S.Netreview.disclose ~inputs ~chosen:(Some (mk_route 11 1)) in
  check_bool "honest accepted" true (S.Netreview.verify_shortest d)

let netreview_catches_cheating () =
  let inputs = [ (G.Asn.of_int 10, mk_route 10 3); (G.Asn.of_int 11, mk_route 11 1) ] in
  check_bool "nonminimal rejected" false
    (S.Netreview.verify_shortest
       (S.Netreview.disclose ~inputs ~chosen:(Some (mk_route 10 3))));
  check_bool "suppression rejected" false
    (S.Netreview.verify_shortest (S.Netreview.disclose ~inputs ~chosen:None));
  check_bool "fabrication rejected" false
    (S.Netreview.verify_shortest
       (S.Netreview.disclose ~inputs ~chosen:(Some (mk_route 99 1))))

let netreview_empty () =
  check_bool "nothing to verify" true
    (S.Netreview.verify_shortest (S.Netreview.disclose ~inputs:[] ~chosen:None))

let netreview_reveals_everything () =
  let inputs = List.init 4 (fun i -> (G.Asn.of_int (10 + i), mk_route (10 + i) (i + 1))) in
  let d = S.Netreview.disclose ~inputs ~chosen:(Some (mk_route 10 1)) in
  check_int "all paths revealed" 4 (List.length (S.Netreview.revealed_paths d));
  check_bool "bytes grow with k" true
    (S.Netreview.disclosure_bytes d
    > S.Netreview.disclosure_bytes
        (S.Netreview.disclose ~inputs:[ List.hd inputs ] ~chosen:None))

let xor_only_circuit_free_in_gmw () =
  (* A parity circuit has zero AND gates: GMW evaluates it with no triples
     and a single reconstruction round. *)
  let b = S.Circuit.Builder.create ~n_inputs:8 in
  let out =
    List.fold_left
      (fun acc i -> S.Circuit.Builder.bxor b acc (S.Circuit.Builder.input b i))
      (S.Circuit.Builder.input b 0)
      [ 1; 2; 3; 4; 5; 6; 7 ]
  in
  let c = S.Circuit.Builder.finish b ~outputs:[ out ] in
  check_int "no ANDs" 0 (S.Circuit.and_count c);
  check_int "depth 0" 0 (S.Circuit.and_depth c);
  let rng = C.Drbg.of_int_seed 9 in
  let inputs = Array.init 8 (fun i -> i mod 2 = 0) in
  let secure, stats = S.Gmw.run rng ~parties:3 c ~inputs in
  check_bool "parity right" true (secure = S.Circuit.eval c inputs);
  check_int "one round" 1 stats.S.Gmw.rounds

let cost_model_recalibration () =
  (* A different anchor scales the gate cost proportionally. *)
  let m15 = S.Cost_model.calibrate ~anchor_seconds:15.0 ~voters:5 in
  let m30 = S.Cost_model.calibrate ~anchor_seconds:30.0 ~voters:5 in
  check_bool "double anchor, roughly double gate cost" true
    (m30.S.Cost_model.c_gate_s > 1.9 *. m15.S.Cost_model.c_gate_s)

let suite =
  [
    ("xor-only circuit free in GMW", `Quick, xor_only_circuit_free_in_gmw);
    ("cost model recalibration", `Quick, cost_model_recalibration);
    circuit_less_than;
    circuit_minimum;
    circuit_majority;
    ("circuit stats sane", `Quick, circuit_stats_sane);
    ("circuit minimum grows with k", `Quick, circuit_minimum_grows_with_k);
    ("circuit bad input count", `Quick, circuit_bad_input_count);
    share_reconstruct;
    ("share hides from subset", `Quick, share_hides_from_strict_subset);
    share_bits_roundtrip;
    gmw_matches_plain;
    ("gmw needs two parties", `Quick, gmw_needs_two_parties);
    ("gmw traffic scales with parties", `Quick, gmw_traffic_scales_with_parties);
    ("cost model hits the 15s anchor", `Quick, cost_model_anchor);
    ("cost model scaling shape", `Quick, cost_model_scaling_shape);
    ("cost model zkp linear", `Quick, cost_model_zkp_linear);
    ("netreview verifies honest", `Quick, netreview_verifies_honest);
    ("netreview catches cheating", `Quick, netreview_catches_cheating);
    ("netreview empty", `Quick, netreview_empty);
    ("netreview reveals everything", `Quick, netreview_reveals_everything);
  ]
