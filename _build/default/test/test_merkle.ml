(* Tests for pvr_merkle: bitstrings, dense Merkle trees, and the §3.6
   prefix-free selective-disclosure tree. *)

module M = Pvr_merkle
module C = Pvr_crypto

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Bitstring ------------------------------------------------------------ *)

let bitstring_basics () =
  let b = M.Bitstring.of_string "0110" in
  check_int "length" 4 (M.Bitstring.length b);
  check_bool "get 0" false (M.Bitstring.get b 0);
  check_bool "get 1" true (M.Bitstring.get b 1);
  check_bool "roundtrip" true
    (M.Bitstring.to_string (M.Bitstring.of_bools [ false; true; true; false ])
    = "0110")

let bitstring_of_string_rejects () =
  Alcotest.check_raises "bad char"
    (Invalid_argument "Bitstring.of_string: expected only '0'/'1'") (fun () ->
      ignore (M.Bitstring.of_string "012"))

let bitstring_of_id_width () =
  check_int "id width" M.Bitstring.id_width
    (M.Bitstring.length (M.Bitstring.of_id "anything"))

let bitstring_of_id_deterministic () =
  check_bool "same id same path" true
    (M.Bitstring.equal (M.Bitstring.of_id "x") (M.Bitstring.of_id "x"));
  check_bool "distinct ids distinct paths" true
    (not (M.Bitstring.equal (M.Bitstring.of_id "x") (M.Bitstring.of_id "y")))

let bitstring_prefix () =
  let p = M.Bitstring.of_string in
  check_bool "prefix" true (M.Bitstring.is_prefix (p "01") (p "0110"));
  check_bool "not prefix" false (M.Bitstring.is_prefix (p "11") (p "0110"));
  check_bool "equal is prefix" true (M.Bitstring.is_prefix (p "01") (p "01"));
  check_bool "longer not prefix" false (M.Bitstring.is_prefix (p "0110") (p "01"))

let bitstring_prefix_free () =
  let p = M.Bitstring.of_string in
  check_bool "free" true (M.Bitstring.prefix_free [ p "00"; p "01"; p "1" ]);
  check_bool "violated" false (M.Bitstring.prefix_free [ p "0"; p "01" ]);
  check_bool "duplicates violate" false (M.Bitstring.prefix_free [ p "01"; p "01" ]);
  check_bool "empty set" true (M.Bitstring.prefix_free [])

let bitstring_fixed_width_prefix_free =
  qtest "fixed-width ids are prefix-free"
    QCheck2.Gen.(list_size (int_range 2 20) (string_size (int_range 1 8)))
    (fun ids ->
      let ids = List.sort_uniq String.compare ids in
      M.Bitstring.prefix_free (List.map M.Bitstring.of_id ids))

(* ---- Merkle tree ------------------------------------------------------------ *)

let merkle_all_leaves_provable () =
  List.iter
    (fun n ->
      let leaves = List.init n (fun i -> "leaf" ^ string_of_int i) in
      let t = M.Merkle_tree.build leaves in
      check_int "size" n (M.Merkle_tree.size t);
      List.iteri
        (fun i leaf ->
          let p = M.Merkle_tree.prove t i in
          check_bool "proof verifies" true
            (M.Merkle_tree.verify ~root:(M.Merkle_tree.root t) ~leaf p))
        leaves)
    [ 1; 2; 3; 7; 8; 9; 64; 100 ]

let merkle_rejects_wrong_leaf () =
  let t = M.Merkle_tree.build [ "a"; "b"; "c" ] in
  let p = M.Merkle_tree.prove t 1 in
  check_bool "wrong leaf" false
    (M.Merkle_tree.verify ~root:(M.Merkle_tree.root t) ~leaf:"x" p)

let merkle_rejects_wrong_root () =
  let t = M.Merkle_tree.build [ "a"; "b"; "c" ] in
  let t2 = M.Merkle_tree.build [ "a"; "b"; "d" ] in
  let p = M.Merkle_tree.prove t 0 in
  check_bool "different trees, different roots" true
    (M.Merkle_tree.root t <> M.Merkle_tree.root t2);
  check_bool "cross-root proof fails for changed leafset" true
    (* leaf 0 is "a" in both trees, but the roots differ, so the proof from
       t cannot verify against t2's root *)
    (not (M.Merkle_tree.verify ~root:(M.Merkle_tree.root t2) ~leaf:"a" p))

let merkle_proof_is_positional () =
  (* The same value at two positions yields distinct proofs that do not
     cross-verify at the wrong index semantics. *)
  let t = M.Merkle_tree.build [ "same"; "same" ] in
  let p0 = M.Merkle_tree.prove t 0 and p1 = M.Merkle_tree.prove t 1 in
  check_bool "indices differ" true (p0.M.Merkle_tree.index <> p1.M.Merkle_tree.index);
  check_bool "both verify" true
    (M.Merkle_tree.verify ~root:(M.Merkle_tree.root t) ~leaf:"same" p0
    && M.Merkle_tree.verify ~root:(M.Merkle_tree.root t) ~leaf:"same" p1)

let merkle_empty () =
  let t = M.Merkle_tree.build [] in
  check_int "size 0" 0 (M.Merkle_tree.size t);
  check_bool "distinguished root" true
    (M.Merkle_tree.root t <> M.Merkle_tree.root (M.Merkle_tree.build [ "" ]))

let merkle_out_of_range () =
  let t = M.Merkle_tree.build [ "a" ] in
  Alcotest.check_raises "negative" (Invalid_argument "Merkle_tree.prove: index")
    (fun () -> ignore (M.Merkle_tree.prove t (-1)));
  Alcotest.check_raises "too big" (Invalid_argument "Merkle_tree.prove: index")
    (fun () -> ignore (M.Merkle_tree.prove t 1))

let merkle_proof_encoding_roundtrip =
  qtest "proof encoding roundtrip"
    QCheck2.Gen.(pair (int_range 1 50) (int_range 0 1_000_000))
    (fun (n, salt) ->
      let leaves = List.init n (fun i -> Printf.sprintf "%d-%d" salt i) in
      let t = M.Merkle_tree.build leaves in
      let i = salt mod n in
      let p = M.Merkle_tree.prove t i in
      match M.Merkle_tree.decode_proof (M.Merkle_tree.encode_proof p) with
      | None -> false
      | Some p' ->
          M.Merkle_tree.verify ~root:(M.Merkle_tree.root t)
            ~leaf:(List.nth leaves i) p')

let merkle_decode_garbage () =
  check_bool "empty" true (M.Merkle_tree.decode_proof "" = None);
  check_bool "junk" true (M.Merkle_tree.decode_proof "garbage!" = None)

let merkle_leaf_order_matters () =
  check_bool "order changes root" true
    (M.Merkle_tree.root (M.Merkle_tree.build [ "a"; "b" ])
    <> M.Merkle_tree.root (M.Merkle_tree.build [ "b"; "a" ]))

(* ---- Prefix tree ------------------------------------------------------------ *)

let entries n = List.init n (fun i -> (M.Bitstring.of_id ("v" ^ string_of_int i), "payload" ^ string_of_int i))

let prefix_tree_prove_verify () =
  let es = entries 25 in
  let t = M.Prefix_tree.build ~seed:"secret" es in
  let root = M.Prefix_tree.root t in
  check_int "cardinal" 25 (M.Prefix_tree.cardinal t);
  List.iter
    (fun (path, value) ->
      match M.Prefix_tree.prove t path with
      | None -> Alcotest.fail "expected proof"
      | Some (v, proof) ->
          check_bool "value matches" true (v = value);
          check_bool "verifies" true
            (M.Prefix_tree.verify ~root ~path ~value proof);
          check_bool "wrong value rejected" false
            (M.Prefix_tree.verify ~root ~path ~value:"forged" proof))
    es

let prefix_tree_absent () =
  let t = M.Prefix_tree.build ~seed:"s" (entries 5) in
  check_bool "absent" true (M.Prefix_tree.prove t (M.Bitstring.of_id "nope") = None);
  check_bool "mem" false (M.Prefix_tree.mem t (M.Bitstring.of_id "nope"));
  check_bool "find" true (M.Prefix_tree.find t (M.Bitstring.of_id "v1") = Some "payload1")

let prefix_tree_rejects_non_prefix_free () =
  let p = M.Bitstring.of_string in
  Alcotest.check_raises "not prefix free"
    (Invalid_argument "Prefix_tree.build: paths are not prefix-free") (fun () ->
      ignore (M.Prefix_tree.build ~seed:"s" [ (p "0", "a"); (p "01", "b") ]))

let prefix_tree_rejects_duplicates () =
  let p = M.Bitstring.of_string in
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Prefix_tree.build: paths are not prefix-free") (fun () ->
      ignore (M.Prefix_tree.build ~seed:"s" [ (p "01", "a"); (p "01", "b") ]))

let prefix_tree_proof_length () =
  let es = entries 10 in
  let t = M.Prefix_tree.build ~seed:"s" es in
  match M.Prefix_tree.prove t (fst (List.hd es)) with
  | Some (_, proof) ->
      check_int "one sibling per bit" M.Bitstring.id_width
        (M.Prefix_tree.proof_length proof)
  | None -> Alcotest.fail "expected proof"

let prefix_tree_cross_proof_rejected () =
  (* A proof for one path cannot authenticate a different path. *)
  let es = entries 4 in
  let t = M.Prefix_tree.build ~seed:"s" es in
  let root = M.Prefix_tree.root t in
  let p0, v0 = List.nth es 0 and p1, _ = List.nth es 1 in
  match M.Prefix_tree.prove t p0 with
  | Some (_, proof) ->
      check_bool "cross path" false
        (M.Prefix_tree.verify ~root ~path:p1 ~value:v0 proof)
  | None -> Alcotest.fail "expected proof"

let prefix_tree_structural_privacy () =
  (* The proof for a vertex must not change observably when an unrelated
     vertex is added or removed — beyond the (expected) root change, every
     sibling on the disclosed path that is not an ancestor of the other
     vertex is a blinded digest.  We check the weaker, behavioural property:
     proofs from trees with different co-populations have the same length
     and still verify only against their own root. *)
  let base = entries 3 in
  let t1 = M.Prefix_tree.build ~seed:"s" base in
  let t2 = M.Prefix_tree.build ~seed:"s" (entries 7) in
  let path, value = List.hd base in
  match (M.Prefix_tree.prove t1 path, M.Prefix_tree.prove t2 path) with
  | Some (_, pr1), Some (_, pr2) ->
      check_int "same proof shape" (M.Prefix_tree.proof_length pr1)
        (M.Prefix_tree.proof_length pr2);
      check_bool "no cross verification" false
        (M.Prefix_tree.verify ~root:(M.Prefix_tree.root t2) ~path ~value pr1)
  | _ -> Alcotest.fail "expected proofs"

let prefix_tree_blinding_seed_changes_root () =
  let es = entries 3 in
  check_bool "seed changes root" true
    (M.Prefix_tree.root (M.Prefix_tree.build ~seed:"a" es)
    <> M.Prefix_tree.root (M.Prefix_tree.build ~seed:"b" es))

let prefix_tree_proof_encoding_roundtrip () =
  let es = entries 6 in
  let t = M.Prefix_tree.build ~seed:"s" es in
  let root = M.Prefix_tree.root t in
  let path, value = List.nth es 3 in
  match M.Prefix_tree.prove t path with
  | Some (_, proof) -> begin
      match M.Prefix_tree.decode_proof (M.Prefix_tree.encode_proof proof) with
      | Some proof' ->
          check_bool "verifies after roundtrip" true
            (M.Prefix_tree.verify ~root ~path ~value proof')
      | None -> Alcotest.fail "decode failed"
    end
  | None -> Alcotest.fail "expected proof"

let prefix_tree_random_population =
  qtest "random populations all provable" ~count:25
    QCheck2.Gen.(pair (int_range 1 40) (int_range 0 1_000_000))
    (fun (n, salt) ->
      let es =
        List.init n (fun i ->
            (M.Bitstring.of_id (Printf.sprintf "%d/%d" salt i), string_of_int i))
      in
      let t = M.Prefix_tree.build ~seed:(string_of_int salt) es in
      let root = M.Prefix_tree.root t in
      List.for_all
        (fun (path, value) ->
          match M.Prefix_tree.prove t path with
          | Some (v, proof) ->
              v = value && M.Prefix_tree.verify ~root ~path ~value proof
          | None -> false)
        es)

let suite =
  [
    ("bitstring basics", `Quick, bitstring_basics);
    ("bitstring of_string rejects", `Quick, bitstring_of_string_rejects);
    ("bitstring of_id width", `Quick, bitstring_of_id_width);
    ("bitstring of_id deterministic", `Quick, bitstring_of_id_deterministic);
    ("bitstring prefix", `Quick, bitstring_prefix);
    ("bitstring prefix-free", `Quick, bitstring_prefix_free);
    bitstring_fixed_width_prefix_free;
    ("merkle all leaves provable", `Quick, merkle_all_leaves_provable);
    ("merkle rejects wrong leaf", `Quick, merkle_rejects_wrong_leaf);
    ("merkle rejects wrong root", `Quick, merkle_rejects_wrong_root);
    ("merkle proof is positional", `Quick, merkle_proof_is_positional);
    ("merkle empty tree", `Quick, merkle_empty);
    ("merkle out of range", `Quick, merkle_out_of_range);
    merkle_proof_encoding_roundtrip;
    ("merkle decode garbage", `Quick, merkle_decode_garbage);
    ("merkle leaf order matters", `Quick, merkle_leaf_order_matters);
    ("prefix tree prove/verify", `Quick, prefix_tree_prove_verify);
    ("prefix tree absent", `Quick, prefix_tree_absent);
    ("prefix tree rejects non-prefix-free", `Quick, prefix_tree_rejects_non_prefix_free);
    ("prefix tree rejects duplicates", `Quick, prefix_tree_rejects_duplicates);
    ("prefix tree proof length", `Quick, prefix_tree_proof_length);
    ("prefix tree cross-proof rejected", `Quick, prefix_tree_cross_proof_rejected);
    ("prefix tree structural privacy", `Quick, prefix_tree_structural_privacy);
    ("prefix tree blinding seed", `Quick, prefix_tree_blinding_seed_changes_root);
    ("prefix tree proof encoding roundtrip", `Quick, prefix_tree_proof_encoding_roundtrip);
    prefix_tree_random_population;
  ]
