(* Tests for pvr_crypto: hashes, MACs, the stream cipher, the DRBG, bignum
   arithmetic, primality, RSA, ring signatures, and commitments. *)

module C = Pvr_crypto
module B = C.Bigint

let check = Alcotest.(check string)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- SHA-256 (FIPS 180-4 known answers) --------------------------------- *)

let sha256_known () =
  let cases =
    [
      ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
      ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
      ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
      ( String.make 1000000 'a',
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0" );
    ]
  in
  List.iter
    (fun (input, expected) -> check "digest" expected (C.Sha256.digest_hex input))
    cases

let sha256_incremental () =
  (* Same digest regardless of how the input is chunked. *)
  let input = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let whole = C.Sha256.digest input in
  List.iter
    (fun chunk ->
      let ctx = C.Sha256.init () in
      let rec feed pos =
        if pos < String.length input then begin
          let n = min chunk (String.length input - pos) in
          C.Sha256.update ctx (String.sub input pos n);
          feed (pos + n)
        end
      in
      feed 0;
      check_bool "chunked" true (C.Sha256.finalize ctx = whole))
    [ 1; 3; 63; 64; 65; 128; 999 ]

let sha256_sensitivity =
  qtest "sha256 avalanche: distinct inputs, distinct digests"
    QCheck2.Gen.(pair string string)
    (fun (a, b) -> a = b || C.Sha256.digest a <> C.Sha256.digest b)

(* ---- HMAC (RFC 4231) ----------------------------------------------------- *)

let hmac_rfc4231 () =
  check "case 1"
    "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
    (C.Hmac.mac_hex ~key:(String.make 20 '\x0b') "Hi There");
  check "case 2"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (C.Hmac.mac_hex ~key:"Jefe" "what do ya want for nothing?");
  check "case 3"
    "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
    (C.Hmac.mac_hex ~key:(String.make 20 '\xaa') (String.make 50 '\xdd'))

let hmac_long_key () =
  (* Keys longer than one block are hashed down (RFC 4231 case 6). *)
  check "case 6"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (C.Hmac.mac_hex
       ~key:(String.make 131 '\xaa')
       "Test Using Larger Than Block-Size Key - Hash Key First")

let hmac_verify () =
  let key = "secret" and msg = "message" in
  let tag = C.Hmac.mac ~key msg in
  check_bool "accepts" true (C.Hmac.verify ~key msg ~tag);
  check_bool "rejects bad tag" false
    (C.Hmac.verify ~key msg ~tag:(String.make 32 '\x00'));
  check_bool "rejects bad key" false (C.Hmac.verify ~key:"other" msg ~tag)

(* ---- ChaCha20 (RFC 8439) -------------------------------------------------- *)

let chacha_block_vector () =
  let key = C.Hex.decode "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f" in
  let nonce = C.Hex.decode "000000090000004a00000000" in
  let block = C.Chacha20.block ~key ~counter:1 ~nonce in
  check "rfc8439 2.3.2"
    "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4ed2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
    (C.Hex.encode block)

let chacha_roundtrip () =
  let key = String.init 32 (fun i -> Char.chr (i * 7 mod 256)) in
  let nonce = String.make 12 '\x42' in
  let msg = "attack at dawn, via AS 7018" in
  let ct = C.Chacha20.encrypt ~key ~nonce msg in
  check_bool "ct differs" true (ct <> msg);
  check "roundtrip" msg (C.Chacha20.encrypt ~key ~nonce ct)

let chacha_counter_continuity () =
  (* Encrypting 130 bytes at counter 0 = block 0 ‖ block 1 ‖ block 2 prefix. *)
  let key = String.make 32 'k' and nonce = String.make 12 'n' in
  let zeros = String.make 130 '\x00' in
  let stream = C.Chacha20.encrypt ~key ~nonce zeros in
  let b0 = C.Chacha20.block ~key ~counter:0 ~nonce in
  let b1 = C.Chacha20.block ~key ~counter:1 ~nonce in
  check_bool "block0" true (String.sub stream 0 64 = b0);
  check_bool "block1" true (String.sub stream 64 64 = b1)

(* ---- DRBG ----------------------------------------------------------------- *)

let drbg_deterministic () =
  let a = C.Drbg.create ~seed:"seed" and b = C.Drbg.create ~seed:"seed" in
  check_bool "same stream" true (C.Drbg.generate a 100 = C.Drbg.generate b 100);
  let c = C.Drbg.create ~seed:"other" in
  check_bool "different stream" true
    (C.Drbg.generate (C.Drbg.create ~seed:"seed") 100 <> C.Drbg.generate c 100)

let drbg_split_independence () =
  let parent = C.Drbg.of_int_seed 1 in
  let c1 = C.Drbg.split parent "a" and c2 = C.Drbg.split parent "b" in
  check_bool "children differ" true
    (C.Drbg.generate c1 64 <> C.Drbg.generate c2 64)

let drbg_uniform_int_bounds =
  qtest "uniform_int stays in range"
    QCheck2.Gen.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let rng = C.Drbg.of_int_seed seed in
      let v = C.Drbg.uniform_int rng bound in
      v >= 0 && v < bound)

let drbg_uniform_int_coverage () =
  (* Every residue of a small bound is hit over many draws. *)
  let rng = C.Drbg.of_int_seed 99 in
  let seen = Array.make 7 false in
  for _ = 1 to 500 do
    seen.(C.Drbg.uniform_int rng 7) <- true
  done;
  check_bool "all residues" true (Array.for_all Fun.id seen)

let drbg_shuffle_permutes () =
  let rng = C.Drbg.of_int_seed 4 in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  C.Drbg.shuffle rng arr;
  check_bool "same multiset" true
    (List.sort compare (Array.to_list arr) = Array.to_list orig)

(* ---- Bigint --------------------------------------------------------------- *)

let big_gen =
  (* Random values across widths, as decimal strings via int chunks. *)
  QCheck2.Gen.(
    map
      (fun (a, b, c) ->
        B.add
          (B.mul (B.add (B.mul (B.of_int a) (B.of_int max_int)) (B.of_int b)) (B.of_int max_int))
          (B.of_int c))
      (triple (int_bound max_int) (int_bound max_int) (int_bound max_int)))

let bigint_small_matches_native =
  qtest "matches native int ops"
    QCheck2.Gen.(pair (int_bound 1_000_000_000) (int_range 1 1_000_000_000))
    (fun (a, b) ->
      let ba = B.of_int a and bb = B.of_int b in
      B.to_int (B.add ba bb) = a + b
      && B.to_int (B.mul ba bb) = a * b
      && B.to_int (B.div ba bb) = a / b
      && B.to_int (B.rem ba bb) = a mod b
      && B.compare ba bb = Int.compare a b)

let bigint_add_sub_roundtrip =
  qtest "(a+b)-b = a" (QCheck2.Gen.pair big_gen big_gen) (fun (a, b) ->
      B.equal (B.sub (B.add a b) b) a)

let bigint_divmod_identity =
  qtest "q*b + r = a and r < b" (QCheck2.Gen.pair big_gen big_gen)
    (fun (a, b) ->
      let b = B.add_int b 1 in
      let q, r = B.divmod a b in
      B.equal (B.add (B.mul q b) r) a && B.compare r b < 0)

let bigint_mul_commutative =
  qtest "a*b = b*a" (QCheck2.Gen.pair big_gen big_gen) (fun (a, b) ->
      B.equal (B.mul a b) (B.mul b a))

let bigint_mul_distributes =
  qtest "a*(b+c) = a*b + a*c" (QCheck2.Gen.triple big_gen big_gen big_gen)
    (fun (a, b, c) ->
      B.equal (B.mul a (B.add b c)) (B.add (B.mul a b) (B.mul a c)))

let bigint_karatsuba_agrees () =
  (* Values wide enough to trigger the Karatsuba path. *)
  let rng = C.Drbg.of_int_seed 17 in
  for _ = 1 to 10 do
    let a = B.random_bits rng 2500 and b = B.random_bits rng 2300 in
    (* (a*b) / a = b when a > 0 *)
    let a = B.add_int a 1 in
    let q, r = B.divmod (B.mul a b) a in
    Alcotest.(check bool) "division recovers factor" true (B.equal q b && B.is_zero r)
  done

let bigint_string_roundtrip =
  qtest "of_string . to_string = id" big_gen (fun a ->
      B.equal (B.of_string (B.to_string a)) a)

let bigint_bytes_roundtrip =
  qtest "of_bytes_be . to_bytes_be = id" big_gen (fun a ->
      B.equal (B.of_bytes_be (B.to_bytes_be a)) a)

let bigint_hex_parse () =
  check_bool "0xff" true (B.equal (B.of_string "0xff") (B.of_int 255));
  check_bool "0xDEADBEEF" true
    (B.equal (B.of_string "0xDEADBEEF") (B.of_int 0xDEADBEEF));
  check_bool "underscores" true
    (B.equal (B.of_string "1_000_000") (B.of_int 1_000_000))

let bigint_shifts =
  qtest "shift_left then shift_right = id"
    (QCheck2.Gen.pair big_gen (QCheck2.Gen.int_range 0 200))
    (fun (a, n) -> B.equal (B.shift_right (B.shift_left a n) n) a)

let bigint_bit_length =
  qtest "2^(len-1) <= a < 2^len" big_gen (fun a ->
      let a = B.add_int a 1 in
      let len = B.bit_length a in
      B.compare a (B.shift_left B.one len) < 0
      && B.compare a (B.shift_left B.one (len - 1)) >= 0)

let bigint_mod_pow_small =
  qtest "mod_pow agrees with naive power"
    QCheck2.Gen.(triple (int_range 0 50) (int_range 0 12) (int_range 2 1000))
    (fun (base, e, m) ->
      let naive = ref 1 in
      for _ = 1 to e do
        naive := !naive * base mod m
      done;
      B.to_int
        (B.mod_pow ~base:(B.of_int base) ~exp:(B.of_int e)
           ~modulus:(B.of_int m))
      = !naive)

let bigint_fermat () =
  (* a^(p-1) = 1 mod p for prime p = 2^127 - 1 (Mersenne). *)
  let p = B.sub_int (B.shift_left B.one 127) 1 in
  let rng = C.Drbg.of_int_seed 3 in
  for _ = 1 to 5 do
    let a = B.add_int (B.random_below rng (B.sub_int p 3)) 2 in
    check_bool "fermat" true
      (B.equal (B.mod_pow ~base:a ~exp:(B.sub_int p 1) ~modulus:p) B.one)
  done

let bigint_mod_inv =
  qtest "a * inv(a) = 1 mod p" big_gen (fun a ->
      let p = B.sub_int (B.shift_left B.one 127) 1 in
      let a = B.add_int (B.rem a (B.sub_int p 2)) 1 in
      let inv = B.mod_inv a p in
      B.equal (B.rem (B.mul a inv) p) B.one)

let bigint_gcd_properties =
  qtest "gcd divides both" (QCheck2.Gen.pair big_gen big_gen) (fun (a, b) ->
      let a = B.add_int a 1 and b = B.add_int b 1 in
      let g = B.gcd a b in
      B.is_zero (B.rem a g) && B.is_zero (B.rem b g))

let bigint_sub_underflow () =
  Alcotest.check_raises "sub underflow"
    (Invalid_argument "Bigint.sub: negative result") (fun () ->
      ignore (B.sub (B.of_int 3) (B.of_int 5)))

let bigint_division_by_zero () =
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (B.divmod B.one B.zero))

let bigint_random_below =
  qtest "random_below is below" QCheck2.Gen.small_int (fun seed ->
      let rng = C.Drbg.of_int_seed seed in
      let bound = B.add_int (B.random_bits rng 100) 1 in
      B.compare (B.random_below rng bound) bound < 0)

(* ---- Primes --------------------------------------------------------------- *)

let prime_small_classification () =
  let rng = C.Drbg.of_int_seed 1 in
  List.iter
    (fun (n, expected) ->
      check_bool (string_of_int n) expected
        (C.Prime.is_probably_prime rng (B.of_int n)))
    [
      (0, false); (1, false); (2, true); (3, true); (4, false); (17, true);
      (561, false) (* Carmichael *); (7919, true); (7917, false);
      (104729, true); (104731, false);
    ]

let prime_mersenne () =
  let rng = C.Drbg.of_int_seed 2 in
  let m127 = B.sub_int (B.shift_left B.one 127) 1 in
  check_bool "2^127-1 prime" true (C.Prime.is_probably_prime rng m127);
  let m67 = B.sub_int (B.shift_left B.one 67) 1 in
  check_bool "2^67-1 composite" false (C.Prime.is_probably_prime rng m67)

let prime_generate_width () =
  let rng = C.Drbg.of_int_seed 3 in
  List.iter
    (fun bits ->
      let p = C.Prime.generate rng ~bits in
      check_int "exact width" bits (B.bit_length p);
      check_bool "odd" false (B.is_even p);
      check_bool "probably prime" true (C.Prime.is_probably_prime rng p))
    [ 16; 32; 64; 128 ]

let prime_product_detected () =
  let rng = C.Drbg.of_int_seed 4 in
  let p = C.Prime.generate rng ~bits:64 and q = C.Prime.generate rng ~bits:64 in
  check_bool "semiprime rejected" false
    (C.Prime.is_probably_prime rng (B.mul p q))

(* ---- RSA ------------------------------------------------------------------ *)

let rsa_key = lazy (C.Rsa.generate (C.Drbg.of_int_seed 42) ~bits:1024)

let rsa_sign_verify () =
  let key = Lazy.force rsa_key in
  let s = C.Rsa.sign key "hello" in
  check_bool "verifies" true (C.Rsa.verify key.pub ~msg:"hello" ~signature:s);
  check_bool "wrong msg" false (C.Rsa.verify key.pub ~msg:"hellp" ~signature:s);
  check_bool "wrong sig" false
    (C.Rsa.verify key.pub ~msg:"hello" ~signature:(String.make (C.Rsa.key_size key.pub) '\x01'))

let rsa_signature_length () =
  let key = Lazy.force rsa_key in
  check_int "one modulus width" (C.Rsa.key_size key.pub)
    (String.length (C.Rsa.sign key "x"))

let rsa_cross_key_rejection () =
  let key = Lazy.force rsa_key in
  let other = C.Rsa.generate (C.Drbg.of_int_seed 43) ~bits:1024 in
  let s = C.Rsa.sign key "msg" in
  check_bool "other key rejects" false
    (C.Rsa.verify other.pub ~msg:"msg" ~signature:s)

let rsa_raw_permutation_roundtrip () =
  let key = Lazy.force rsa_key in
  let rng = C.Drbg.of_int_seed 44 in
  for _ = 1 to 5 do
    let x = B.random_below rng key.pub.n in
    check_bool "private . public = id" true
      (B.equal (C.Rsa.raw_apply_private key (C.Rsa.raw_apply_public key.pub x)) x);
    check_bool "public . private = id" true
      (B.equal (C.Rsa.raw_apply_public key.pub (C.Rsa.raw_apply_private key x)) x)
  done

let rsa_deterministic_signatures () =
  let key = Lazy.force rsa_key in
  check_bool "PKCS#1 v1.5 is deterministic" true
    (C.Rsa.sign key "m" = C.Rsa.sign key "m")

let rsa_fingerprint_distinct () =
  let key = Lazy.force rsa_key in
  let other = C.Rsa.generate (C.Drbg.of_int_seed 45) ~bits:512 in
  check_bool "distinct" true
    (C.Rsa.fingerprint key.pub <> C.Rsa.fingerprint other.pub)

(* ---- Ring signatures ------------------------------------------------------ *)

let ring_keys =
  lazy
    (let rng = C.Drbg.of_int_seed 50 in
     Array.init 5 (fun _ -> C.Rsa.generate rng ~bits:512))

let ring_pub () = Array.map (fun (k : C.Rsa.private_key) -> k.pub) (Lazy.force ring_keys)

let ring_sign_verify_all_signers () =
  let keys = Lazy.force ring_keys in
  let ring = ring_pub () in
  let rng = C.Drbg.of_int_seed 51 in
  Array.iteri
    (fun i key ->
      let s = C.Ring_signature.sign rng ~ring ~signer:i ~key "stmt" in
      check_bool "verifies" true (C.Ring_signature.verify ~ring ~msg:"stmt" s);
      check_bool "wrong msg" false (C.Ring_signature.verify ~ring ~msg:"stmt2" s))
    keys

let ring_wrong_ring_rejected () =
  let keys = Lazy.force ring_keys in
  let ring = ring_pub () in
  let rng = C.Drbg.of_int_seed 52 in
  let s = C.Ring_signature.sign rng ~ring ~signer:0 ~key:keys.(0) "stmt" in
  let other = C.Rsa.generate rng ~bits:512 in
  let ring' = Array.copy ring in
  ring'.(4) <- other.pub;
  check_bool "modified ring rejects" false
    (C.Ring_signature.verify ~ring:ring' ~msg:"stmt" s)

let ring_signer_mismatch_raises () =
  let keys = Lazy.force ring_keys in
  let ring = ring_pub () in
  let rng = C.Drbg.of_int_seed 53 in
  Alcotest.check_raises "wrong slot"
    (Invalid_argument "Ring_signature.sign: key does not match ring slot")
    (fun () ->
      ignore (C.Ring_signature.sign rng ~ring ~signer:1 ~key:keys.(0) "x"))

let ring_encode_roundtrip () =
  let keys = Lazy.force ring_keys in
  let ring = ring_pub () in
  let rng = C.Drbg.of_int_seed 54 in
  let s = C.Ring_signature.sign rng ~ring ~signer:2 ~key:keys.(2) "stmt" in
  match C.Ring_signature.decode (C.Ring_signature.encode s) with
  | None -> Alcotest.fail "decode failed"
  | Some s' ->
      check_bool "still verifies" true
        (C.Ring_signature.verify ~ring ~msg:"stmt" s');
      check_int "ring size" 5 (C.Ring_signature.ring_size s')

let ring_decode_garbage () =
  check_bool "empty" true (C.Ring_signature.decode "" = None);
  check_bool "junk" true (C.Ring_signature.decode "not a signature" = None)

(* ---- Commitments ----------------------------------------------------------- *)

let commitment_roundtrip () =
  let rng = C.Drbg.of_int_seed 60 in
  let c, o = C.Commitment.commit rng "value" in
  check_bool "verifies" true (C.Commitment.verify c o);
  check_bool "wrong value" false
    (C.Commitment.verify c { o with C.Commitment.value = "other" });
  check_bool "wrong nonce" false
    (C.Commitment.verify c { o with C.Commitment.nonce = String.make 32 'x' })

let commitment_hiding () =
  (* Two commitments to the same value differ (fresh nonces). *)
  let rng = C.Drbg.of_int_seed 61 in
  let c1, _ = C.Commitment.commit rng "v" in
  let c2, _ = C.Commitment.commit rng "v" in
  check_bool "nonce blinds" true ((c1 :> string) <> (c2 :> string))

let commitment_bits () =
  let rng = C.Drbg.of_int_seed 62 in
  let c, o = C.Commitment.commit_bit rng true in
  check_bool "opens to true" true (C.Commitment.opening_bit o = Some true);
  check_bool "verifies" true (C.Commitment.verify c o);
  let _, o0 = C.Commitment.commit_bit rng false in
  check_bool "opens to false" true (C.Commitment.opening_bit o0 = Some false);
  check_bool "non-bit" true
    (C.Commitment.opening_bit { o with C.Commitment.value = "2" } = None)

let commitment_binding =
  qtest "binding: different values never collide"
    QCheck2.Gen.(pair string string)
    (fun (a, b) ->
      a = b
      ||
      let nonce = String.make 32 'n' in
      (C.Commitment.commit_with_nonce ~nonce a :> string)
      <> (C.Commitment.commit_with_nonce ~nonce b :> string))

(* ---- Hex / Bytes_util ------------------------------------------------------ *)

let hex_roundtrip =
  qtest "hex roundtrip" QCheck2.Gen.string (fun s ->
      C.Hex.decode (C.Hex.encode s) = s)

let hex_rejects () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length")
    (fun () -> ignore (C.Hex.decode "abc"));
  Alcotest.check_raises "bad digit"
    (Invalid_argument "Hex.decode: not a hex digit") (fun () ->
      ignore (C.Hex.decode "zz"))

let bytes_util_encodings () =
  check_int "be32" 4 (String.length (C.Bytes_util.be32 0));
  check_int "read_be32" 0x01020304
    (C.Bytes_util.read_be32 (C.Bytes_util.be32 0x01020304) 0);
  check_int "read_le32" 0x01020304
    (C.Bytes_util.read_le32 (C.Bytes_util.le32 0x01020304) 0)

let encode_list_injective =
  qtest "encode_list is injective"
    QCheck2.Gen.(pair (list string) (list string))
    (fun (a, b) ->
      a = b || C.Bytes_util.encode_list a <> C.Bytes_util.encode_list b)

let xor_involution =
  qtest "xor twice = id" QCheck2.Gen.(pair string string) (fun (a, b) ->
      let n = min (String.length a) (String.length b) in
      let a = String.sub a 0 n and b = String.sub b 0 n in
      C.Bytes_util.xor (C.Bytes_util.xor a b) b = a)

let equal_ct_matches =
  qtest "equal_ct agrees with =" QCheck2.Gen.(pair string string)
    (fun (a, b) -> C.Bytes_util.equal_ct a b = (a = b))

(* ---- Additional edge cases -------------------------------------------------- *)

let chacha_rejects_bad_sizes () =
  Alcotest.check_raises "short key"
    (Invalid_argument "Chacha20: key must be 32 bytes") (fun () ->
      ignore (C.Chacha20.block ~key:"short" ~counter:0 ~nonce:(String.make 12 'n')));
  Alcotest.check_raises "short nonce"
    (Invalid_argument "Chacha20: nonce must be 12 bytes") (fun () ->
      ignore (C.Chacha20.block ~key:(String.make 32 'k') ~counter:0 ~nonce:"n"))

let drbg_reseed_changes_stream () =
  let a = C.Drbg.create ~seed:"s" and b = C.Drbg.create ~seed:"s" in
  ignore (C.Drbg.generate a 16);
  ignore (C.Drbg.generate b 16);
  C.Drbg.reseed a "entropy";
  check_bool "diverged" true (C.Drbg.generate a 32 <> C.Drbg.generate b 32)

let bigint_to_int_overflow () =
  Alcotest.check_raises "overflow" (Failure "Bigint.to_int: overflow")
    (fun () -> ignore (B.to_int (B.shift_left B.one 100)))

let bigint_mod_inv_not_coprime () =
  Alcotest.check_raises "no inverse" Not_found (fun () ->
      ignore (B.mod_inv (B.of_int 6) (B.of_int 9)))

let bigint_mod_pow_edge_cases () =
  (* modulus 1: everything is 0. *)
  check_bool "mod 1" true
    (B.is_zero (B.mod_pow ~base:(B.of_int 5) ~exp:(B.of_int 3) ~modulus:B.one));
  (* exponent 0: result 1. *)
  check_bool "exp 0" true
    (B.equal
       (B.mod_pow ~base:(B.of_int 5) ~exp:B.zero ~modulus:(B.of_int 7))
       B.one)

let rsa_too_small_modulus () =
  Alcotest.check_raises "tiny key"
    (Invalid_argument "Rsa.generate: modulus too small") (fun () ->
      ignore (C.Rsa.generate (C.Drbg.of_int_seed 1) ~bits:16))

let commitment_of_raw_rejects () =
  Alcotest.check_raises "bad length"
    (Invalid_argument "Commitment.of_raw: expected a 32-byte digest")
    (fun () -> ignore (C.Commitment.of_raw "short"))

let prime_rejects_tiny_request () =
  Alcotest.check_raises "too few bits"
    (Invalid_argument "Prime.generate: need at least 4 bits") (fun () ->
      ignore (C.Prime.generate (C.Drbg.of_int_seed 1) ~bits:2))

let small_primes_table_correct () =
  (* Spot-check the sieve against a naive primality test. *)
  let naive n =
    n >= 2
    &&
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
    go 2
  in
  Array.iter
    (fun p -> check_bool (string_of_int p) true (naive p))
    C.Prime.small_primes;
  check_int "pi(1000)" 168 (Array.length C.Prime.small_primes)

let suite =
  [
    ("sha256 known answers", `Quick, sha256_known);
    ("chacha rejects bad sizes", `Quick, chacha_rejects_bad_sizes);
    ("drbg reseed changes stream", `Quick, drbg_reseed_changes_stream);
    ("bigint to_int overflow", `Quick, bigint_to_int_overflow);
    ("bigint mod_inv not coprime", `Quick, bigint_mod_inv_not_coprime);
    ("bigint mod_pow edge cases", `Quick, bigint_mod_pow_edge_cases);
    ("rsa too-small modulus", `Quick, rsa_too_small_modulus);
    ("commitment of_raw rejects", `Quick, commitment_of_raw_rejects);
    ("prime rejects tiny request", `Quick, prime_rejects_tiny_request);
    ("small primes table correct", `Quick, small_primes_table_correct);
    ("sha256 incremental", `Quick, sha256_incremental);
    sha256_sensitivity;
    ("hmac rfc4231", `Quick, hmac_rfc4231);
    ("hmac long key", `Quick, hmac_long_key);
    ("hmac verify", `Quick, hmac_verify);
    ("chacha20 rfc8439 block", `Quick, chacha_block_vector);
    ("chacha20 roundtrip", `Quick, chacha_roundtrip);
    ("chacha20 counter continuity", `Quick, chacha_counter_continuity);
    ("drbg deterministic", `Quick, drbg_deterministic);
    ("drbg split independence", `Quick, drbg_split_independence);
    drbg_uniform_int_bounds;
    ("drbg uniform coverage", `Quick, drbg_uniform_int_coverage);
    ("drbg shuffle permutes", `Quick, drbg_shuffle_permutes);
    bigint_small_matches_native;
    bigint_add_sub_roundtrip;
    bigint_divmod_identity;
    bigint_mul_commutative;
    bigint_mul_distributes;
    ("bigint karatsuba agrees", `Quick, bigint_karatsuba_agrees);
    bigint_string_roundtrip;
    bigint_bytes_roundtrip;
    ("bigint hex parse", `Quick, bigint_hex_parse);
    bigint_shifts;
    bigint_bit_length;
    bigint_mod_pow_small;
    ("bigint fermat little theorem", `Quick, bigint_fermat);
    bigint_mod_inv;
    bigint_gcd_properties;
    ("bigint sub underflow", `Quick, bigint_sub_underflow);
    ("bigint division by zero", `Quick, bigint_division_by_zero);
    bigint_random_below;
    ("prime small classification", `Quick, prime_small_classification);
    ("prime mersenne", `Quick, prime_mersenne);
    ("prime generate width", `Slow, prime_generate_width);
    ("prime product detected", `Quick, prime_product_detected);
    ("rsa sign/verify", `Quick, rsa_sign_verify);
    ("rsa signature length", `Quick, rsa_signature_length);
    ("rsa cross-key rejection", `Quick, rsa_cross_key_rejection);
    ("rsa raw permutation roundtrip", `Quick, rsa_raw_permutation_roundtrip);
    ("rsa deterministic signatures", `Quick, rsa_deterministic_signatures);
    ("rsa fingerprint distinct", `Quick, rsa_fingerprint_distinct);
    ("ring sign/verify all signers", `Quick, ring_sign_verify_all_signers);
    ("ring wrong ring rejected", `Quick, ring_wrong_ring_rejected);
    ("ring signer mismatch raises", `Quick, ring_signer_mismatch_raises);
    ("ring encode roundtrip", `Quick, ring_encode_roundtrip);
    ("ring decode garbage", `Quick, ring_decode_garbage);
    ("commitment roundtrip", `Quick, commitment_roundtrip);
    ("commitment hiding", `Quick, commitment_hiding);
    ("commitment bits", `Quick, commitment_bits);
    commitment_binding;
    hex_roundtrip;
    ("hex rejects", `Quick, hex_rejects);
    ("bytes_util encodings", `Quick, bytes_util_encodings);
    encode_list_injective;
    xor_involution;
    equal_ct_matches;
  ]
