(* Tests for pvr_rfg: operators, graph evaluation, promises (ground truth vs
   reference graphs), static checking, and the policy-language compiler. *)

module R = Pvr_rfg
module G = Pvr_bgp

let asn = G.Asn.of_int
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let prefix0 = G.Prefix.of_string "10.0.0.0/8"

let mk_route ?(communities = []) first len =
  let path =
    List.init len (fun j -> if j = 0 then asn first else asn (1000 + j))
  in
  let base = G.Route.originate ~asn:(asn first) prefix0 in
  { base with G.Route.as_path = path; next_hop = asn first; communities }

(* ---- Operators -------------------------------------------------------------- *)

let op_exists () =
  check_bool "empty" true (R.Operator.apply R.Operator.Exists [ []; [] ] = []);
  check_int "one out" 1
    (List.length (R.Operator.apply R.Operator.Exists [ []; [ mk_route 10 2 ] ]))

let op_min_path_length () =
  let rs = [ mk_route 10 3; mk_route 11 1; mk_route 12 1; mk_route 13 5 ] in
  let out = R.Operator.apply R.Operator.Min_path_length [ rs ] in
  check_int "both minima" 2 (List.length out);
  check_bool "all length 1" true
    (List.for_all (fun r -> G.Route.path_length r = 1) out)

let op_union () =
  let out =
    R.Operator.apply R.Operator.Union [ [ mk_route 10 1 ]; [ mk_route 11 2 ] ]
  in
  check_int "all" 2 (List.length out)

let op_filter () =
  let rs = [ mk_route 10 1; mk_route 11 3 ] in
  let out =
    R.Operator.apply
      (R.Operator.Filter [ G.Policy.Match_path_length_le 2 ])
      [ rs ]
  in
  check_int "filtered" 1 (List.length out)

let op_not_through () =
  let rs = [ mk_route 10 3; mk_route 11 1 ] in
  let out = R.Operator.apply (R.Operator.Not_through (asn 1001)) [ rs ] in
  (* route 10 has path [10;1001;1002]; route 11 is [11]. *)
  check_int "dropped transit" 1 (List.length out)

let op_has_community () =
  let tagged = mk_route ~communities:[ (65000, 1) ] 10 1 in
  let out =
    R.Operator.apply (R.Operator.Has_community (65000, 1))
      [ [ tagged; mk_route 11 1 ] ]
  in
  check_int "kept tagged" 1 (List.length out)

let op_within_hops_of_min () =
  let rs = [ mk_route 10 2; mk_route 11 3; mk_route 12 6 ] in
  let out = R.Operator.apply (R.Operator.Within_hops_of_min 1) [ rs ] in
  check_int "within 1 of min" 2 (List.length out)

let op_shorter_of () =
  let short = [ mk_route 10 1 ] and long = [ mk_route 11 4 ] in
  let pick inputs =
    match R.Operator.apply R.Operator.Shorter_of inputs with
    | [ r ] -> Some (G.Route.path_length r)
    | [] -> None
    | _ -> Alcotest.fail "expected at most one route"
  in
  check_bool "first wins when shorter" true (pick [ short; long ] = Some 1);
  check_bool "second wins otherwise" true (pick [ long; short ] = Some 1);
  check_bool "tie goes to second" true
    (pick [ [ mk_route 10 2 ] ; [ mk_route 11 2 ] ] = Some 2);
  check_bool "second empty" true (pick [ short; [] ] = Some 1);
  check_bool "both empty" true (pick [ []; [] ] = None)

let op_shorter_of_arity () =
  Alcotest.check_raises "unary rejected"
    (Invalid_argument "Operator.apply: wrong arity") (fun () ->
      ignore (R.Operator.apply R.Operator.Shorter_of [ [] ]))

let op_first_nonempty () =
  let out =
    R.Operator.apply R.Operator.First_nonempty
      [ []; [ mk_route 11 2 ]; [ mk_route 12 1 ] ]
  in
  check_bool "ordered fallback" true
    (List.for_all (fun r -> G.Route.path_length r = 2) out)

let op_best_matches_decision =
  qtest "Best operator = Decision.best"
    QCheck2.Gen.(list_size (int_range 1 6) (pair (int_range 10 99) (int_range 1 8)))
    (fun specs ->
      let rs = List.map (fun (f, l) -> mk_route f l) specs in
      let via_op =
        R.Operator.apply (R.Operator.Best G.Decision.standard_pipeline) [ rs ]
      in
      match (via_op, G.Decision.best rs) with
      | [ a ], Some b -> G.Route.equal a b
      | [], None -> true
      | _ -> false)

let all_ops =
  [
    R.Operator.Exists;
    R.Operator.Min_path_length;
    R.Operator.Union;
    R.Operator.Best G.Decision.standard_pipeline;
    R.Operator.Best [ G.Decision.Shortest_as_path ];
    R.Operator.Filter
      [
        G.Policy.Match_any;
        G.Policy.Match_prefix_exact (G.Prefix.of_string "10.0.0.0/8");
        G.Policy.Match_prefix_in (G.Prefix.of_string "172.16.0.0/12");
        G.Policy.Match_community (65000, 1);
        G.Policy.Match_as_in_path (asn 7);
        G.Policy.Match_next_hop (asn 8);
        G.Policy.Match_path_length_le 5;
      ];
    R.Operator.Not_through (asn 666);
    R.Operator.Has_community (65000, 42);
    R.Operator.Within_hops_of_min 3;
    R.Operator.Shorter_of;
    R.Operator.First_nonempty;
  ]

let op_decode_roundtrip () =
  List.iter
    (fun op ->
      match R.Operator.decode (R.Operator.encode op) with
      | Some op' ->
          check_bool (R.Operator.name op) true
            (R.Operator.encode op' = R.Operator.encode op)
      | None -> Alcotest.failf "decode failed for %s" (R.Operator.name op))
    all_ops

let op_decode_garbage () =
  check_bool "empty" true (R.Operator.decode "" = None);
  check_bool "junk" true (R.Operator.decode "garbage" = None);
  check_bool "truncated" true
    (R.Operator.decode (String.sub (R.Operator.encode R.Operator.Exists) 0 3)
    = None)

let op_encode_injective () =
  let ops =
    [
      R.Operator.Exists;
      R.Operator.Min_path_length;
      R.Operator.Union;
      R.Operator.Best G.Decision.standard_pipeline;
      R.Operator.Filter [ G.Policy.Match_any ];
      R.Operator.Not_through (asn 1);
      R.Operator.Not_through (asn 2);
      R.Operator.Has_community (1, 2);
      R.Operator.Within_hops_of_min 1;
      R.Operator.Within_hops_of_min 2;
      R.Operator.Shorter_of;
      R.Operator.First_nonempty;
    ]
  in
  let encs = List.map R.Operator.encode ops in
  check_int "all distinct" (List.length encs)
    (List.length (List.sort_uniq String.compare encs))

(* ---- Rfg --------------------------------------------------------------------- *)

let build_fig1 neighbors b =
  R.Promise.reference_rfg (R.Promise.Shortest_from neighbors) ~beneficiary:b
    ~neighbors

let rfg_eval_fig1 () =
  let ns = [ asn 10; asn 11; asn 12 ] in
  let g = build_fig1 ns (asn 100) in
  let inputs =
    [
      (R.Promise.input_var (asn 10), [ mk_route 10 3 ]);
      (R.Promise.input_var (asn 11), [ mk_route 11 1 ]);
    ]
  in
  let v = R.Rfg.eval g ~inputs in
  match R.Rfg.value v (R.Promise.output_var (asn 100)) with
  | [ r ] -> check_int "min selected" 1 (G.Route.path_length r)
  | _ -> Alcotest.fail "expected exactly one output route"

let rfg_unseeded_inputs_empty () =
  let ns = [ asn 10 ] in
  let g = build_fig1 ns (asn 100) in
  let v = R.Rfg.eval g ~inputs:[] in
  check_bool "no output" true
    (R.Rfg.value v (R.Promise.output_var (asn 100)) = [])

let rfg_rejects_duplicate_vertex () =
  let g = R.Rfg.add_var R.Rfg.empty "x" R.Rfg.Internal in
  Alcotest.check_raises "dup" (Invalid_argument "Rfg.add_var: duplicate id x")
    (fun () -> ignore (R.Rfg.add_var g "x" R.Rfg.Internal))

let rfg_rejects_double_producer () =
  let g = R.Rfg.add_var R.Rfg.empty "in" (R.Rfg.Input (asn 1)) in
  let g = R.Rfg.add_var g "out" R.Rfg.Internal in
  let g = R.Rfg.add_op g "op1" R.Operator.Union ~inputs:[ "in" ] ~output:"out" in
  Alcotest.check_raises "double producer"
    (Invalid_argument "Rfg.add_op: variable out already has a producer")
    (fun () ->
      ignore (R.Rfg.add_op g "op2" R.Operator.Union ~inputs:[ "in" ] ~output:"out"))

let rfg_rejects_unknown_input () =
  let g = R.Rfg.add_var R.Rfg.empty "out" R.Rfg.Internal in
  Alcotest.check_raises "unknown input"
    (Invalid_argument "Rfg.add_op: unknown input variable nope") (fun () ->
      ignore (R.Rfg.add_op g "op" R.Operator.Union ~inputs:[ "nope" ] ~output:"out"))

let rfg_detects_cycle () =
  let g = R.Rfg.add_var R.Rfg.empty "a" R.Rfg.Internal in
  let g = R.Rfg.add_var g "b" R.Rfg.Internal in
  let g = R.Rfg.add_op g "op1" R.Operator.Union ~inputs:[ "a" ] ~output:"b" in
  let g = R.Rfg.add_op g "op2" R.Operator.Union ~inputs:[ "b" ] ~output:"a" in
  Alcotest.check_raises "cycle"
    (Failure "Rfg.topological_ops: cycle in route-flow graph") (fun () ->
      ignore (R.Rfg.topological_ops g))

let rfg_navigation () =
  let ns = [ asn 10; asn 11 ] in
  let g =
    R.Promise.reference_rfg
      (R.Promise.Prefer_unless_shorter { fallback = [ asn 11 ]; override = asn 10 })
      ~beneficiary:(asn 100) ~neighbors:ns
  in
  let out = R.Promise.output_var (asn 100) in
  check_bool "producer" true (R.Rfg.producer_of_var g out = Some "op:choose");
  check_bool "preds of out" true (R.Rfg.predecessors g out = [ "op:choose" ]);
  check_bool "op inputs ordered" true
    (R.Rfg.inputs_of_op g "op:choose"
    = [ R.Promise.input_var (asn 10); "v:fallback-min" ]);
  check_bool "consumer chain" true
    (R.Rfg.successors g (R.Promise.input_var (asn 11)) = [ "op:min" ]);
  check_int "two ops" 2 (List.length (R.Rfg.op_ids g));
  check_int "input vars" 2 (List.length (R.Rfg.input_vars g))

(* ---- Composite operators (§4 structural privacy) -------------------------------- *)

(* An inner graph computing min over two inputs. *)
let inner_min () =
  let g = R.Rfg.add_var R.Rfg.empty "a" (R.Rfg.Input (asn 901)) in
  let g = R.Rfg.add_var g "b" (R.Rfg.Input (asn 902)) in
  let g = R.Rfg.add_var g "out" (R.Rfg.Output (asn 903)) in
  R.Rfg.add_op g "inner-min" R.Operator.Min_path_length ~inputs:[ "a"; "b" ]
    ~output:"out"

let composite_graph () =
  let g = R.Rfg.add_var R.Rfg.empty "x" (R.Rfg.Input (asn 10)) in
  let g = R.Rfg.add_var g "y" (R.Rfg.Input (asn 11)) in
  let g = R.Rfg.add_var g "z" (R.Rfg.Output (asn 100)) in
  R.Rfg.add_composite g "comp" ~inner:(inner_min ()) ~inputs:[ "x"; "y" ]
    ~output:"z"

let composite_eval_matches_flat () =
  let g = composite_graph () in
  let inputs = [ ("x", [ mk_route 10 4 ]); ("y", [ mk_route 11 2 ]) ] in
  let v = R.Rfg.eval g ~inputs in
  match R.Rfg.value v "z" with
  | [ r ] -> check_int "inner min applied" 2 (G.Route.path_length r)
  | _ -> Alcotest.fail "expected one route"

let composite_introspection () =
  let g = composite_graph () in
  check_bool "composite_of" true (R.Rfg.composite_of g "comp" <> None);
  check_bool "operator_of is None" true (R.Rfg.operator_of g "comp" = None);
  check_bool "is_operator_vertex" true (R.Rfg.is_operator_vertex g "comp");
  check_bool "producer" true (R.Rfg.producer_of_var g "z" = Some "comp")

let composite_rejects_bad_inner () =
  let g = R.Rfg.add_var R.Rfg.empty "x" (R.Rfg.Input (asn 10)) in
  let g = R.Rfg.add_var g "z" R.Rfg.Internal in
  (* Inner graph expects two inputs; only one given. *)
  Alcotest.check_raises "arity"
    (Invalid_argument "Rfg.add_composite: inner input arity mismatch")
    (fun () ->
      ignore
        (R.Rfg.add_composite g "comp" ~inner:(inner_min ()) ~inputs:[ "x" ]
           ~output:"z"));
  (* Inner graph with no output. *)
  let no_output = R.Rfg.add_var R.Rfg.empty "a" (R.Rfg.Input (asn 901)) in
  Alcotest.check_raises "no inner output"
    (Invalid_argument "Rfg.add_composite: inner graph needs exactly one output")
    (fun () ->
      ignore
        (R.Rfg.add_composite g "comp" ~inner:no_output ~inputs:[ "x" ]
           ~output:"z"))

(* ---- Promises: reference graphs satisfy ground truth -------------------------- *)

(* Random scenario generator: up to 5 providers with random lengths, possibly
   absent. *)
let scenario_gen =
  QCheck2.Gen.(
    list_size (int_range 0 5) (pair (int_range 1 8) bool)
    |> map (fun specs ->
           List.filteri (fun _ (_, present) -> present) specs
           |> List.mapi (fun i (len, _) -> (10 + i, len))))

let promise_agrees promise ~neighbors scenario =
  let b = asn 100 in
  let rfg = R.Promise.reference_rfg promise ~beneficiary:b ~neighbors in
  let inputs = List.map (fun (n, len) -> (asn n, mk_route n len)) scenario in
  R.Promise.holds_on_rfg promise ~rfg ~beneficiary:b ~inputs

let promise_shortest_ref =
  qtest "reference graph satisfies Shortest_route" scenario_gen (fun sc ->
      let neighbors = List.map (fun (n, _) -> asn n) sc @ [ asn 50 ] in
      promise_agrees R.Promise.Shortest_route ~neighbors sc)

let promise_shortest_from_ref =
  qtest "reference graph satisfies Shortest_from" scenario_gen (fun sc ->
      let subset = List.filteri (fun i _ -> i mod 2 = 0) sc in
      let neighbors = List.map (fun (n, _) -> asn n) sc in
      let promise =
        R.Promise.Shortest_from (List.map (fun (n, _) -> asn n) subset)
      in
      (* Promise only constrains the subset's routes; evaluate with all. *)
      let b = asn 100 in
      let rfg = R.Promise.reference_rfg promise ~beneficiary:b ~neighbors in
      let inputs = List.map (fun (n, len) -> (asn n, mk_route n len)) sc in
      R.Promise.holds_on_rfg promise ~rfg ~beneficiary:b ~inputs)

let promise_within_hops_ref =
  qtest "reference graph satisfies Within_hops" scenario_gen (fun sc ->
      let neighbors = List.map (fun (n, _) -> asn n) sc @ [ asn 50 ] in
      promise_agrees (R.Promise.Within_hops 2) ~neighbors sc)

let promise_exists_ref =
  qtest "reference graph satisfies Export_if_any" scenario_gen (fun sc ->
      let neighbors = List.map (fun (n, _) -> asn n) sc @ [ asn 50 ] in
      promise_agrees
        (R.Promise.Export_if_any (List.map (fun (n, _) -> asn n) sc))
        ~neighbors sc)

let promise_prefer_ref =
  qtest "reference graph satisfies Prefer_unless_shorter" scenario_gen
    (fun sc ->
      match sc with
      | [] -> true
      | (first, _) :: rest ->
          let override = asn first in
          let fallback = List.map (fun (n, _) -> asn n) rest in
          if fallback = [] then true
          else begin
            let neighbors = override :: fallback in
            promise_agrees
              (R.Promise.Prefer_unless_shorter { fallback; override })
              ~neighbors sc
          end)

let promise_violation_detected_by_oracle () =
  (* permitted() must reject a non-minimal export. *)
  let inputs = [ (asn 10, mk_route 10 1); (asn 11, mk_route 11 4) ] in
  check_bool "long export rejected" false
    (R.Promise.permitted R.Promise.Shortest_route ~inputs
       ~exported:(Some (mk_route 11 4)) ());
  check_bool "short export accepted" true
    (R.Promise.permitted R.Promise.Shortest_route ~inputs
       ~exported:(Some (mk_route 10 1)) ());
  check_bool "silent withholding rejected" false
    (R.Promise.permitted R.Promise.Shortest_route ~inputs ~exported:None ())

let promise_no_longer_than_others () =
  let r1 = mk_route 10 2 and r2 = mk_route 11 3 in
  check_bool "shorter ok" true
    (R.Promise.permitted R.Promise.No_longer_than_others ~inputs:[]
       ~other_exports:[ r2 ] ~exported:(Some r1) ());
  check_bool "longer bad" false
    (R.Promise.permitted R.Promise.No_longer_than_others ~inputs:[]
       ~other_exports:[ r1 ] ~exported:(Some r2) ())

(* ---- Static check --------------------------------------------------------------- *)

let static_check_accepts_reference () =
  let ns = [ asn 10; asn 11; asn 12 ] in
  List.iter
    (fun promise ->
      let g = R.Promise.reference_rfg promise ~beneficiary:(asn 100) ~neighbors:ns in
      check_int
        (R.Promise.describe promise)
        0
        (List.length
           (R.Static_check.implements g ~promise ~beneficiary:(asn 100)
              ~neighbors:ns)))
    [
      R.Promise.Shortest_route;
      R.Promise.Shortest_from [ asn 10; asn 11 ];
      R.Promise.Within_hops 2;
      R.Promise.Export_if_any [ asn 11; asn 12 ];
      R.Promise.Prefer_unless_shorter { fallback = [ asn 11; asn 12 ]; override = asn 10 };
    ]

let static_check_rejects_wrong_operator () =
  let ns = [ asn 10; asn 11 ] in
  (* Build an "exists" graph but claim shortest. *)
  let g =
    R.Promise.reference_rfg (R.Promise.Export_if_any ns) ~beneficiary:(asn 100)
      ~neighbors:ns
  in
  let issues =
    R.Static_check.implements g ~promise:R.Promise.Shortest_route
      ~beneficiary:(asn 100) ~neighbors:ns
  in
  check_bool "issues found" true (issues <> [])

let static_check_rejects_wrong_subset () =
  let ns = [ asn 10; asn 11; asn 12 ] in
  let g =
    R.Promise.reference_rfg
      (R.Promise.Shortest_from [ asn 10 ])
      ~beneficiary:(asn 100) ~neighbors:ns
  in
  let issues =
    R.Static_check.implements g
      ~promise:(R.Promise.Shortest_from [ asn 10; asn 11 ])
      ~beneficiary:(asn 100) ~neighbors:ns
  in
  check_bool "wiring issue" true
    (List.exists
       (function R.Static_check.Wrong_wiring _ -> true | _ -> false)
       issues)

let static_check_missing_output () =
  let issues =
    R.Static_check.implements R.Rfg.empty ~promise:R.Promise.Shortest_route
      ~beneficiary:(asn 100) ~neighbors:[ asn 10 ]
  in
  check_bool "no output" true
    (List.exists
       (function R.Static_check.No_output _ -> true | _ -> false)
       issues)

let static_check_visibility () =
  let ns = [ asn 10; asn 11 ] in
  let promise = R.Promise.Shortest_from ns in
  let g = R.Promise.reference_rfg promise ~beneficiary:(asn 100) ~neighbors:ns in
  (* Fully visible: fine. *)
  check_int "all visible" 0
    (List.length
       (R.Static_check.verifiable_under g ~promise ~beneficiary:(asn 100)
          ~neighbors:ns
          ~visible:(fun ~viewer:_ _ -> true)));
  (* Operator hidden: not verifiable. *)
  let issues =
    R.Static_check.verifiable_under g ~promise ~beneficiary:(asn 100)
      ~neighbors:ns
      ~visible:(fun ~viewer:_ v -> v <> "op:min")
  in
  check_bool "hidden operator flagged" true
    (List.exists
       (function R.Static_check.Invisible_vertex "op:min" -> true | _ -> false)
       issues)

(* ---- Compiler --------------------------------------------------------------------- *)

let sample_config = {|
# partial-transit example
policy for AS1 {
  promise to AS100 = shortest-from AS10 AS11;
  promise to AS200 = prefer AS11 unless-shorter AS10;
  promise to AS300 = export-if-any AS10 AS11;
  promise to AS400 = within-hops 3;
  promise to AS500 = shortest;
  promise to AS600 = no-longer-than-others;
  import from AS10 {
    if prefix-in 10.0.0.0/8 and pathlen-le 6 then set-local-pref 120 accept;
    if community 65000:666 then reject;
    accept;
  }
  export to AS100 {
    if path-has AS666 then reject;
    then prepend 2 accept;
  }
}
|}

let compiler_parses_sample () =
  match R.Compiler.parse sample_config with
  | Error e -> Alcotest.failf "parse error: %s" (Format.asprintf "%a" R.Compiler.pp_error e)
  | Ok config ->
      check_int "promises" 6 (List.length config.R.Compiler.promises);
      check_int "imports" 1 (List.length config.R.Compiler.imports);
      check_int "exports" 1 (List.length config.R.Compiler.exports);
      check_bool "owner" true (G.Asn.equal config.R.Compiler.owner (asn 1))

let compiler_render_roundtrip () =
  match R.Compiler.parse sample_config with
  | Error _ -> Alcotest.fail "sample must parse"
  | Ok config -> begin
      let rendered = R.Compiler.render config in
      match R.Compiler.parse rendered with
      | Error e ->
          Alcotest.failf "rendered config does not re-parse: %s"
            (Format.asprintf "%a" R.Compiler.pp_error e)
      | Ok config2 ->
          check_bool "fixed point" true (R.Compiler.render config2 = rendered)
    end

let compiler_compile_static_ok () =
  match R.Compiler.parse sample_config with
  | Error _ -> Alcotest.fail "sample must parse"
  | Ok config ->
      let neighbors = [ asn 10; asn 11 ] in
      List.iter
        (fun (b, p, g) ->
          check_int
            ("compiled " ^ R.Promise.describe p)
            0
            (List.length
               (R.Static_check.implements g ~promise:p ~beneficiary:b
                  ~neighbors)))
        (R.Compiler.compile config ~neighbors)

let compiler_error_reporting () =
  let cases =
    [
      ("", "end of input");
      ("policy for X1 {}", "AS number");
      ("policy for AS1 { promise to AS2 = bogus; }", "unknown promise");
      ("policy for AS1 { import from AS2 { if then accept; } }", "condition");
      ("policy for AS1 { export to AS2 { maybe; } }", "accept/reject");
      ("policy for AS1 {} trailing", "trailing");
    ]
  in
  List.iter
    (fun (src, _hint) ->
      match R.Compiler.parse src with
      | Ok _ -> Alcotest.failf "expected %S to fail" src
      | Error _ -> ())
    cases

let compiler_line_numbers () =
  let src = "policy for AS1 {\n  promise to AS2 = bogus;\n}" in
  match R.Compiler.parse src with
  | Error e -> check_int "line 2" 2 e.R.Compiler.line
  | Ok _ -> Alcotest.fail "expected error"

let compiler_comments_ignored () =
  let src = "# hello\npolicy for AS1 { # mid\n promise to AS2 = shortest; # end\n}" in
  match R.Compiler.parse src with
  | Ok c -> check_int "one promise" 1 (List.length c.R.Compiler.promises)
  | Error e -> Alcotest.failf "parse error: %s" (Format.asprintf "%a" R.Compiler.pp_error e)

let suite =
  [
    ("operator exists", `Quick, op_exists);
    ("operator min path length", `Quick, op_min_path_length);
    ("operator union", `Quick, op_union);
    ("operator filter", `Quick, op_filter);
    ("operator not-through", `Quick, op_not_through);
    ("operator has-community", `Quick, op_has_community);
    ("operator within-hops-of-min", `Quick, op_within_hops_of_min);
    ("operator shorter-of", `Quick, op_shorter_of);
    ("operator shorter-of arity", `Quick, op_shorter_of_arity);
    ("operator first-nonempty", `Quick, op_first_nonempty);
    op_best_matches_decision;
    ("operator encodings injective", `Quick, op_encode_injective);
    ("operator decode roundtrip", `Quick, op_decode_roundtrip);
    ("operator decode garbage", `Quick, op_decode_garbage);
    ("rfg eval figure 1", `Quick, rfg_eval_fig1);
    ("rfg unseeded inputs empty", `Quick, rfg_unseeded_inputs_empty);
    ("rfg rejects duplicate vertex", `Quick, rfg_rejects_duplicate_vertex);
    ("rfg rejects double producer", `Quick, rfg_rejects_double_producer);
    ("rfg rejects unknown input", `Quick, rfg_rejects_unknown_input);
    ("rfg detects cycle", `Quick, rfg_detects_cycle);
    ("rfg navigation", `Quick, rfg_navigation);
    ("composite eval matches flat", `Quick, composite_eval_matches_flat);
    ("composite introspection", `Quick, composite_introspection);
    ("composite rejects bad inner", `Quick, composite_rejects_bad_inner);
    promise_shortest_ref;
    promise_shortest_from_ref;
    promise_within_hops_ref;
    promise_exists_ref;
    promise_prefer_ref;
    ("promise oracle rejects violations", `Quick, promise_violation_detected_by_oracle);
    ("promise no-longer-than-others", `Quick, promise_no_longer_than_others);
    ("static check accepts references", `Quick, static_check_accepts_reference);
    ("static check rejects wrong operator", `Quick, static_check_rejects_wrong_operator);
    ("static check rejects wrong subset", `Quick, static_check_rejects_wrong_subset);
    ("static check missing output", `Quick, static_check_missing_output);
    ("static check visibility (§4 minimum access)", `Quick, static_check_visibility);
    ("compiler parses sample", `Quick, compiler_parses_sample);
    ("compiler render roundtrip", `Quick, compiler_render_roundtrip);
    ("compiler compile + static check", `Quick, compiler_compile_static_ok);
    ("compiler error reporting", `Quick, compiler_error_reporting);
    ("compiler line numbers", `Quick, compiler_line_numbers);
    ("compiler comments ignored", `Quick, compiler_comments_ignored);
  ]
