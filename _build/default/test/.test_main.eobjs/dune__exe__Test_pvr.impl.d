test/test_pvr.ml: Alcotest Lazy List Option Printf Pvr Pvr_bgp Pvr_crypto Pvr_rfg QCheck2 QCheck_alcotest String
