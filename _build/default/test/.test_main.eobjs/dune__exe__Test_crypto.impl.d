test/test_crypto.ml: Alcotest Array Char Fun Int Lazy List Pvr_crypto QCheck2 QCheck_alcotest String
