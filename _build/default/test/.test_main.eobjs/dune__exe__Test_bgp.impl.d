test/test_bgp.ml: Alcotest Int List Printf Pvr_bgp Pvr_crypto QCheck2 QCheck_alcotest String
