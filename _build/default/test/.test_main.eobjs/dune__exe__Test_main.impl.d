test/test_main.ml: Alcotest Test_bgp Test_crypto Test_merkle Test_pvr Test_rfg Test_smc
