test/test_rfg.ml: Alcotest Format List Pvr_bgp Pvr_rfg QCheck2 QCheck_alcotest String
