test/test_merkle.ml: Alcotest List Printf Pvr_crypto Pvr_merkle QCheck2 QCheck_alcotest String
