test/test_smc.ml: Alcotest Array Float Fun List Printf Pvr_bgp Pvr_crypto Pvr_smc QCheck2 QCheck_alcotest
